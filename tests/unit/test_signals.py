"""Unit tests for congestion signalling."""

import math

import numpy as np
import pytest

from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.signals import (ExponentialSignal, FeedbackScheme,
                                FeedbackStyle, LinearSaturating,
                                PowerSaturating, SignalFunction,
                                aggregate_congestion,
                                individual_congestion)
from repro.core.topology import single_gateway, two_gateway_shared
from repro.errors import RateVectorError


class TestSignalFunctions:
    @pytest.fixture(params=["linear", "power", "exponential"])
    def signal(self, request):
        return {"linear": LinearSaturating(),
                "power": PowerSaturating(2.0),
                "exponential": ExponentialSignal(0.7)}[request.param]

    def test_zero_maps_to_zero(self, signal):
        assert signal(0.0) == 0.0

    def test_inf_maps_to_one(self, signal):
        assert signal(math.inf) == 1.0

    def test_monotone(self, signal):
        cs = np.linspace(0, 50, 200)
        bs = [signal(c) for c in cs]
        assert all(b2 >= b1 for b1, b2 in zip(bs, bs[1:]))

    def test_range(self, signal):
        for c in (0.0, 0.3, 1.0, 10.0, 1e6):
            assert 0.0 <= signal(c) <= 1.0

    def test_inverse_roundtrip(self, signal):
        for c in (0.0, 0.4, 1.0, 7.0):
            assert signal.congestion_for(signal(c)) == pytest.approx(c)

    def test_inverse_of_one_is_inf(self, signal):
        assert math.isinf(signal.congestion_for(1.0))

    def test_negative_congestion_rejected(self, signal):
        with pytest.raises(RateVectorError):
            signal(-0.1)

    def test_bad_signal_rejected(self, signal):
        with pytest.raises(RateVectorError):
            signal.congestion_for(1.5)

    def test_apply_batch_matches_scalar_incl_inf(self, signal):
        c = np.array([0.0, 0.5, 3.0, math.inf])
        out = signal.apply_batch(c)
        assert out.shape == c.shape
        assert np.allclose(out[:3], [signal(x) for x in c[:3]],
                           atol=1e-12)
        assert out[3] == 1.0

    @pytest.mark.parametrize("fn", [LinearSaturating(),
                                    PowerSaturating(2.444),
                                    ExponentialSignal(1.3)])
    def test_scalar_is_bit_identical_to_batch(self, fn):
        # Found by the scenario fuzzer: libm pow/exp (the builtin ** and
        # math.exp) disagree with numpy's ufuncs in the last ulp, which
        # let run() and run_ensemble() drift apart under delayed-fault
        # feedback.  The scalar path must reproduce apply_batch exactly.
        cs = np.random.default_rng(3).uniform(0.0, 20.0, 500)
        batch = fn.apply_batch(cs)
        for c, expected in zip(cs, batch):
            assert fn(float(c)) == expected

    def test_apply_batch_empty(self, signal):
        out = signal.apply_batch(np.empty((0,)))
        assert out.shape == (0,)
        out2 = signal.apply_batch(np.empty((0, 3)))
        assert out2.shape == (0, 3)


class _NaiveSignal(SignalFunction):
    """A user subclass whose scalar map would emit inf/inf NaN at
    overload — the base apply_batch must shield it."""

    name = "naive"

    def __call__(self, congestion):
        return congestion / (congestion + 1.0)  # NaN at congestion=inf

    def congestion_for(self, signal):
        return signal / (1.0 - signal)


class TestBaseApplyBatch:
    def test_shields_subclass_from_inf(self):
        out = _NaiveSignal().apply_batch(
            np.array([0.0, 1.0, math.inf]))
        assert np.array_equal(out, [0.0, 0.5, 1.0])
        assert not np.any(np.isnan(out))

    def test_empty_input(self):
        assert _NaiveSignal().apply_batch(np.empty((0,))).shape == (0,)
        assert _NaiveSignal().apply_batch(
            np.empty((2, 0))).shape == (2, 0)

    def test_preserves_shape(self):
        out = _NaiveSignal().apply_batch(np.full((3, 4), 2.0))
        assert out.shape == (3, 4)
        assert np.allclose(out, 2.0 / 3.0)

    def test_overloaded_scheme_signals_stay_finite(self):
        # At rho_total >= 1 every queue is inf; the scheme must emit 1.0
        # (B(inf) = 1), never NaN, for both scalar and batch paths —
        # even with a signal function that cannot handle inf itself.
        scheme = FeedbackScheme(single_gateway(3, mu=1.0), Fifo(),
                                _NaiveSignal(), FeedbackStyle.AGGREGATE)
        rates = np.array([0.5, 0.5, 0.5])
        b = scheme.signals(rates)
        b_batch = scheme.signals_batch(rates[None, :])[0]
        assert np.array_equal(b, np.ones(3))
        assert np.array_equal(b_batch, b)


class TestSpecificForms:
    def test_linear_value(self):
        assert LinearSaturating()(1.0) == pytest.approx(0.5)

    def test_linear_steady_utilisation(self):
        # b = rho at a single gateway: rho_ss(b=0.5) = 0.5.
        assert LinearSaturating().steady_state_utilisation(0.5) == \
            pytest.approx(0.5)

    def test_power_is_rho_squared_at_gateway(self):
        # B(g(rho)) = rho^2 for the power-2 form.
        signal = PowerSaturating(2.0)
        for rho in (0.1, 0.4, 0.8):
            c = rho / (1 - rho)
            assert signal(c) == pytest.approx(rho ** 2)

    def test_power_invalid_exponent(self):
        with pytest.raises(RateVectorError):
            PowerSaturating(0.0)

    def test_exponential_value(self):
        assert ExponentialSignal(1.0)(1.0) == \
            pytest.approx(1 - math.exp(-1))

    def test_exponential_invalid_k(self):
        with pytest.raises(RateVectorError):
            ExponentialSignal(-1.0)


class TestCongestionMeasures:
    def test_aggregate_sum(self):
        assert aggregate_congestion([1.0, 2.0, 0.5]) == pytest.approx(3.5)

    def test_aggregate_inf(self):
        assert math.isinf(aggregate_congestion([1.0, math.inf]))

    def test_individual_formula(self):
        q = np.array([1.0, 3.0, 2.0])
        c = individual_congestion(q)
        assert c[0] == pytest.approx(3.0)   # 1+1+1
        assert c[1] == pytest.approx(6.0)   # 1+3+2 (aggregate)
        assert c[2] == pytest.approx(5.0)   # 1+2+2

    def test_individual_smallest_is_n_qmin(self):
        q = np.array([0.5, 2.0, 4.0])
        c = individual_congestion(q)
        assert c[0] == pytest.approx(3 * 0.5)

    def test_individual_largest_equals_aggregate(self):
        q = np.array([0.5, 2.0, 4.0])
        c = individual_congestion(q)
        assert c[2] == pytest.approx(q.sum())

    def test_individual_with_inf_queue(self):
        q = np.array([1.0, math.inf])
        c = individual_congestion(q)
        assert c[0] == pytest.approx(2.0)  # min(inf, 1) = 1
        assert math.isinf(c[1])

    def test_individual_rejects_matrix(self):
        with pytest.raises(RateVectorError):
            individual_congestion(np.zeros((2, 2)))


class TestFeedbackScheme:
    def test_aggregate_same_signal_for_all(self, rates4):
        scheme = FeedbackScheme(single_gateway(4), Fifo(),
                                LinearSaturating(),
                                FeedbackStyle.AGGREGATE)
        b = scheme.signals(rates4)
        assert np.allclose(b, b[0])

    def test_aggregate_signal_is_utilisation(self, rates4):
        # With B(C)=C/(C+1) and C = g(rho): b = rho.
        scheme = FeedbackScheme(single_gateway(4), Fifo(),
                                LinearSaturating(),
                                FeedbackStyle.AGGREGATE)
        b = scheme.signals(rates4)
        assert b[0] == pytest.approx(rates4.sum())

    def test_individual_orders_with_rates(self, rates4):
        scheme = FeedbackScheme(single_gateway(4), FairShare(),
                                LinearSaturating(),
                                FeedbackStyle.INDIVIDUAL)
        b = scheme.signals(rates4)
        order_r = np.argsort(rates4)
        assert np.all(np.diff(b[order_r]) >= -1e-12)

    def test_individual_independent_of_discipline_for_largest(self,
                                                              rates4):
        # For the largest connection C_i equals the aggregate, which is
        # conserved across disciplines.
        big = int(np.argmax(rates4))
        b_fifo = FeedbackScheme(single_gateway(4), Fifo(),
                                LinearSaturating(),
                                FeedbackStyle.INDIVIDUAL).signals(rates4)
        b_fs = FeedbackScheme(single_gateway(4), FairShare(),
                              LinearSaturating(),
                              FeedbackStyle.INDIVIDUAL).signals(rates4)
        assert b_fifo[big] == pytest.approx(b_fs[big])

    def test_bottleneck_is_max_over_path(self):
        net = two_gateway_shared(mu_a=0.5, mu_b=5.0)
        scheme = FeedbackScheme(net, Fifo(), LinearSaturating(),
                                FeedbackStyle.AGGREGATE)
        rates = np.array([0.2, 0.2, 0.2])
        local = scheme.local_signals(rates)
        b = scheme.signals(rates)
        # 'long' (conn 0) crosses both; ga is far more loaded.
        assert b[0] == pytest.approx(float(np.max(local["ga"])))
        assert b[0] > float(local["gb"][0])

    def test_bottlenecks_reported(self):
        net = two_gateway_shared(mu_a=0.5, mu_b=5.0)
        scheme = FeedbackScheme(net, Fifo(), LinearSaturating(),
                                FeedbackStyle.AGGREGATE)
        bn = scheme.bottlenecks(np.array([0.2, 0.2, 0.2]))
        assert bn[0] == ("ga",)
        assert bn[1] == ("ga",)
        assert bn[2] == ("gb",)

    def test_zero_signal_is_no_bottleneck(self):
        scheme = FeedbackScheme(single_gateway(2), Fifo(),
                                LinearSaturating(),
                                FeedbackStyle.AGGREGATE)
        bn = scheme.bottlenecks(np.array([0.0, 0.0]))
        assert bn[0] == ()
