"""Unit tests for the benchmark regression gate's comparison logic.

The gate itself times real workloads; these tests exercise only the
pure :func:`compare` / :func:`format_report` functions and check the
committed baseline file stays well-formed.
"""

import json
import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(_BENCHMARKS))

from regression_gate import (GATED, GATED_ASYNC, GATED_CONTROLLERS,
                             GATED_SCALE, GATED_SIM,
                             _quick_baseline_for_mode,
                             compare, format_report)  # noqa: E402


def _baseline(ensemble=50.0, sweep=20.0, ens_min=5.0, sweep_min=3.0):
    return {
        "ensemble": {"speedup": ensemble},
        "quadratic_sweep": {"speedup": sweep},
        "targets": {"ensemble_speedup_min": ens_min,
                    "quadratic_sweep_speedup_min": sweep_min},
    }


def _fresh(ensemble, sweep):
    return {"ensemble": {"speedup": ensemble},
            "quadratic_sweep": {"speedup": sweep}}


class TestCompare:
    def test_pass_when_fresh_matches_baseline(self):
        ok, report = compare(_baseline(), _fresh(50.0, 20.0))
        assert ok
        assert all(entry["ok"] for entry in report)

    def test_pass_within_threshold(self):
        # 25% slower is the boundary: 50 * 0.75 = 37.5.
        ok, _ = compare(_baseline(), _fresh(37.5, 15.0))
        assert ok

    def test_fail_beyond_threshold(self):
        ok, report = compare(_baseline(), _fresh(37.0, 20.0))
        assert not ok
        failed = [e for e in report if not e["ok"]]
        assert [e["name"] for e in failed] == ["ensemble"]

    def test_floor_never_below_minimum_target(self):
        # Baseline barely above target: the floor is the target, not
        # baseline * (1 - threshold).
        ok, report = compare(_baseline(ensemble=6.0), _fresh(5.5, 20.0))
        assert ok
        ensemble = next(e for e in report if e["name"] == "ensemble")
        assert ensemble["floor"] == 5.0

    def test_floor_only_ignores_baseline(self):
        # Quick mode: a big drop from the baseline passes as long as
        # the minimum targets are met.
        ok, _ = compare(_baseline(), _fresh(6.0, 3.5), floor_only=True)
        assert ok
        ok, _ = compare(_baseline(), _fresh(4.0, 3.5), floor_only=True)
        assert not ok

    def test_custom_threshold(self):
        ok, _ = compare(_baseline(), _fresh(46.0, 19.0), threshold=0.05)
        assert not ok
        ok, _ = compare(_baseline(), _fresh(48.0, 19.5), threshold=0.05)
        assert ok

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare(_baseline(), _fresh(50.0, 20.0), threshold=1.0)
        with pytest.raises(ValueError):
            compare(_baseline(), _fresh(50.0, 20.0), threshold=-0.1)

    def test_report_formatting(self):
        ok, report = compare(_baseline(), _fresh(10.0, 20.0))
        text = format_report(report)
        assert "FAIL" in text and "ensemble" in text
        assert "OK" in text and "quadratic_sweep" in text


class TestCommittedBaseline:
    def test_baseline_file_has_gated_keys(self):
        data = json.loads(
            (_BENCHMARKS.parent / "BENCH_core.json").read_text())
        for name, target_key in GATED:
            assert "speedup" in data[name]
            assert target_key in data["targets"]
        assert data["targets_met"] is True

    def test_gate_passes_against_itself(self):
        # The committed baseline compared against its own numbers must
        # always pass — the gate's invariant after a baseline refresh.
        data = json.loads(
            (_BENCHMARKS.parent / "BENCH_core.json").read_text())
        ok, _ = compare(data, data)
        assert ok


class TestSimBaseline:
    def _sim_baseline(self):
        return json.loads(
            (_BENCHMARKS.parent / "BENCH_sim.json").read_text())

    def test_baseline_file_has_gated_keys(self):
        data = self._sim_baseline()
        for name, target_key in GATED_SIM:
            assert "speedup" in data[name]
            assert target_key in data["targets"]
            assert target_key in data["quick_targets"]
            # Quick floors must not be stricter than the full targets.
            assert data["quick_targets"][target_key] <= \
                data["targets"][target_key]
        assert data["targets_met"] is True

    def test_gate_passes_against_itself(self):
        data = self._sim_baseline()
        ok, _ = compare(data, data, gated=GATED_SIM)
        assert ok

    def test_quick_mode_swaps_in_quick_targets(self):
        data = self._sim_baseline()
        swapped = _quick_baseline_for_mode(data, quick=True,
                                           quick_targets={})
        assert swapped["targets"] == data["quick_targets"]
        assert _quick_baseline_for_mode(data, quick=False,
                                        quick_targets={}) is data

    def test_compare_judges_sim_keys(self):
        baseline = {
            "fifo_closed_loop": {"speedup": 6.0},
            "f12_end_to_end": {"speedup": 2.5},
            "warm_start": {"speedup": 2.0},
            "targets": {"fifo_events_speedup_min": 5.0,
                        "f12_speedup_min": 2.0,
                        "warm_start_savings_min": 1.5},
        }
        fresh = {"fifo_closed_loop": {"speedup": 5.5},
                 "f12_end_to_end": {"speedup": 2.2},
                 "warm_start": {"speedup": 1.9}}
        ok, report = compare(baseline, fresh, gated=GATED_SIM)
        assert ok
        assert [e["name"] for e in report] == \
            [name for name, _ in GATED_SIM]
        fresh["fifo_closed_loop"]["speedup"] = 4.0
        ok, report = compare(baseline, fresh, gated=GATED_SIM)
        assert not ok


class TestScaleBaseline:
    def _scale_baseline(self):
        return json.loads(
            (_BENCHMARKS.parent / "BENCH_scale.json").read_text())

    def test_baseline_file_has_gated_keys(self):
        data = self._scale_baseline()
        for name, target_key in GATED_SCALE:
            assert "speedup" in data[name]
            assert target_key in data["targets"]
            assert target_key in data["quick_targets"]
            assert data["quick_targets"][target_key] <= \
                data["targets"][target_key]
        assert data["targets_met"] is True
        # The headline claim: the blocked run fits the stated budget
        # and the one-shot run does not.
        assert data["memory"]["blocked_within_budget"] is True
        assert data["memory"]["oneshot_within_budget"] is False
        assert data["memory"]["n"] >= 100_000
        assert data["memory"]["members"] >= 64

    def test_gate_passes_against_itself(self):
        data = self._scale_baseline()
        ok, _ = compare(data, data, gated=GATED_SCALE)
        assert ok

    def test_compare_judges_scale_keys(self):
        baseline = {
            "memory": {"speedup": 5.0},
            "throughput": {"speedup": 1.0},
            "targets": {"scale_memory_ratio_min": 3.0,
                        "scale_throughput_ratio_min": 0.9},
        }
        fresh = {"memory": {"speedup": 4.0},
                 "throughput": {"speedup": 0.95}}
        ok, report = compare(baseline, fresh, gated=GATED_SCALE)
        assert ok
        assert [e["name"] for e in report] == \
            [name for name, _ in GATED_SCALE]
        fresh["throughput"]["speedup"] = 0.5
        ok, _ = compare(baseline, fresh, gated=GATED_SCALE)
        assert not ok


class TestControllersBaseline:
    def _ctrl_baseline(self):
        return json.loads(
            (_BENCHMARKS.parent / "BENCH_controllers.json").read_text())

    def test_baseline_file_has_gated_keys(self):
        data = self._ctrl_baseline()
        for name, target_key in GATED_CONTROLLERS:
            assert "speedup" in data[name]
            assert target_key in data["targets"]
            assert target_key in data["quick_targets"]
            assert data["quick_targets"][target_key] <= \
                data["targets"][target_key]
        assert data["targets_met"] is True

    def test_gate_passes_against_itself(self):
        data = self._ctrl_baseline()
        ok, _ = compare(data, data, gated=GATED_CONTROLLERS)
        assert ok

    def test_compare_judges_controller_keys(self):
        baseline = {
            "controlled_ensemble": {"speedup": 30.0},
            "tcp_delta_batch": {"speedup": 25.0},
            "targets": {"controllers_ensemble_speedup_min": 8.0,
                        "controllers_delta_batch_speedup_min": 10.0},
        }
        fresh = {"controlled_ensemble": {"speedup": 28.0},
                 "tcp_delta_batch": {"speedup": 22.0}}
        ok, report = compare(baseline, fresh, gated=GATED_CONTROLLERS)
        assert ok
        assert [e["name"] for e in report] == \
            [name for name, _ in GATED_CONTROLLERS]
        fresh["controlled_ensemble"]["speedup"] = 9.0
        ok, report = compare(baseline, fresh, gated=GATED_CONTROLLERS)
        assert not ok
        failed = [e for e in report if not e["ok"]]
        assert [e["name"] for e in failed] == ["controlled_ensemble"]


class TestAsyncBaseline:
    def _async_baseline(self):
        return json.loads(
            (_BENCHMARKS.parent / "BENCH_async.json").read_text())

    def test_baseline_file_has_gated_keys(self):
        data = self._async_baseline()
        for name, target_key in GATED_ASYNC:
            assert "speedup" in data[name]
            assert target_key in data["targets"]
            assert target_key in data["quick_targets"]
            assert data["quick_targets"][target_key] <= \
                data["targets"][target_key]
        assert data["targets_met"] is True
        # The headline claim: the batched engine beats the per-member
        # Python loop by at least the stated floor at M=256.
        assert data["async_ensemble"]["members"] >= 256
        assert data["async_ensemble"]["speedup"] >= \
            data["targets"]["async_ensemble_speedup_min"]

    def test_gate_passes_against_itself(self):
        data = self._async_baseline()
        ok, _ = compare(data, data, gated=GATED_ASYNC)
        assert ok

    def test_compare_judges_async_keys(self):
        baseline = {
            "async_ensemble": {"speedup": 40.0},
            "delay_ring": {"speedup": 0.8},
            "targets": {"async_ensemble_speedup_min": 10.0,
                        "async_delay_ring_ratio_min": 0.5},
        }
        fresh = {"async_ensemble": {"speedup": 35.0},
                 "delay_ring": {"speedup": 0.75}}
        ok, report = compare(baseline, fresh, gated=GATED_ASYNC)
        assert ok
        assert [e["name"] for e in report] == \
            [name for name, _ in GATED_ASYNC]
        fresh["async_ensemble"]["speedup"] = 9.0
        ok, report = compare(baseline, fresh, gated=GATED_ASYNC)
        assert not ok
        failed = [e for e in report if not e["ok"]]
        assert [e["name"] for e in failed] == ["async_ensemble"]
