"""Unit tests for the feasibility constraints (Section 2.2)."""

import numpy as np
import pytest

from repro.core.fairshare import FairShare
from repro.core.feasibility import (check_feasibility,
                                    check_order_preservation,
                                    check_prefix_bounds,
                                    check_rate_monotonicity,
                                    check_symmetry,
                                    check_time_scale_invariance,
                                    check_total_conservation)
from repro.core.fifo import Fifo
from repro.core.math_utils import g
from repro.core.service import PreemptivePriority, ServiceDiscipline


class _Overserving(ServiceDiscipline):
    """A bogus discipline creating queue out of thin air."""

    name = "bogus-overserving"

    def queue_lengths(self, rates, mu):
        return Fifo().queue_lengths(rates, mu) * 2.0


class _Stalling(ServiceDiscipline):
    """A bogus discipline that under-queues a prefix (stalls)."""

    name = "bogus-stalling"

    def queue_lengths(self, rates, mu):
        q = Fifo().queue_lengths(rates, mu)
        out = q.copy()
        if len(out) >= 2:
            # Steal queue from the smallest and give it to the largest:
            # the smallest's prefix now undercuts its dedicated-server
            # bound g(rho_small) ... actually give the smallest LESS
            # than even a dedicated preemptive server would hold.
            small = int(np.argmin(rates))
            big = int(np.argmax(rates))
            if small != big:
                stolen = 0.9 * out[small]
                out[small] -= stolen
                out[big] += stolen
        return out


class TestConservation:
    def test_fifo_conserves(self, rates4):
        assert check_total_conservation(Fifo(), rates4, 1.0)

    def test_fair_share_conserves(self, rates4):
        assert check_total_conservation(FairShare(), rates4, 1.0)

    def test_priority_conserves(self, rates4):
        disc = PreemptivePriority([0, 1, 2, 3])
        assert check_total_conservation(disc, rates4, 1.0)

    def test_overload_both_infinite(self):
        assert check_total_conservation(Fifo(), [0.7, 0.7], 1.0)

    def test_bogus_fails(self, rates4):
        assert not check_total_conservation(_Overserving(), rates4, 1.0)


class TestPrefixBounds:
    def test_fifo_satisfies(self, rates4):
        assert check_prefix_bounds(Fifo(), rates4, 1.0)

    def test_fair_share_satisfies(self, rates4):
        assert check_prefix_bounds(FairShare(), rates4, 1.0)

    def test_fair_share_smallest_prefix_tight(self):
        # For FS the k smallest connections hold more than a dedicated
        # server would: the bound must hold but not by miles.
        r = np.array([0.1, 0.2, 0.3])
        q = FairShare().queue_lengths(r, 1.0)
        assert q[0] >= g(0.1) - 1e-12

    def test_bogus_stalling_fails(self):
        r = np.array([0.3, 0.31, 0.3])
        assert not check_prefix_bounds(_Stalling(), r, 1.0)

    def test_single_connection_trivially_ok(self):
        assert check_prefix_bounds(Fifo(), [0.4], 1.0)

    def test_zero_rates_ignored(self):
        assert check_prefix_bounds(FairShare(), [0.0, 0.3, 0.0], 1.0)


class TestStructuralChecks:
    def test_symmetry_fifo(self, rates4):
        assert check_symmetry(Fifo(), rates4, 1.0)

    def test_symmetry_fair_share(self, rates4):
        assert check_symmetry(FairShare(), rates4, 1.0)

    def test_priority_is_not_symmetric(self):
        # A fixed priority order distinguishes connections: swapping
        # the rates does not swap the queues.
        disc = PreemptivePriority([0, 1])
        q = disc.queue_lengths([0.3, 0.31], 1.0)
        q_swapped = disc.queue_lengths([0.31, 0.3], 1.0)
        assert not np.allclose(q[::-1], q_swapped)

    def test_tsi_fifo(self, rates4):
        assert check_time_scale_invariance(Fifo(), rates4, 1.0)

    def test_tsi_fair_share(self, rates4):
        assert check_time_scale_invariance(FairShare(), rates4, 1.0)

    def test_monotonicity(self, rates4, any_discipline):
        assert check_rate_monotonicity(any_discipline, rates4, 1.0)

    def test_order_preservation_fifo(self, rates4):
        assert check_order_preservation(Fifo(), rates4, 1.0)

    def test_order_preservation_fair_share(self, rates4):
        assert check_order_preservation(FairShare(), rates4, 1.0)

    def test_order_preservation_fails_for_fixed_priority(self):
        # Priority can give a *larger* connection a smaller queue.
        disc = PreemptivePriority([1, 0])  # conn 1 has top priority
        r = np.array([0.2, 0.5])
        assert not check_order_preservation(disc, r, 1.0)


class TestFullReport:
    def test_fifo_feasible(self, rates4):
        report = check_feasibility(Fifo(), rates4, 1.0)
        assert report.feasible
        assert report.failures == []

    def test_fair_share_feasible(self, rates4):
        assert check_feasibility(FairShare(), rates4, 1.0).feasible

    def test_bogus_reports_failures(self, rates4):
        report = check_feasibility(_Overserving(), rates4, 1.0)
        assert not report.feasible
        assert not report.total_conservation
        assert any("conserved" in f for f in report.failures)
