"""Unit tests for the observability layer: records, sessions, metrics,
provenance, and the JSON artifact writer."""

import json
import threading

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.experiments.base import ExperimentResult
from repro.observability import (ARTIFACT_SCHEMA, RUN_RECORD_SCHEMA,
                                 CollectorSession, MetricsRegistry,
                                 RunRecord, SweepRecord, active_session,
                                 collect, config_hash,
                                 experiment_artifact, is_collecting,
                                 provenance, validate_artifact,
                                 validate_run_record, write_artifact,
                                 write_experiment_artifact)
from repro.parallel import sweep


def _make_system(n=4):
    return FlowControlSystem(single_gateway(n, mu=1.0), FairShare(),
                             LinearSaturating(),
                             TargetRule(eta=0.1, beta=0.5),
                             style=FeedbackStyle.INDIVIDUAL)


def _square(x):
    return x * x


class TestMetricsRegistry:
    def test_counter_and_timer(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        with reg.timer("work").time():
            pass
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["timers"]["work"]["count"] == 1
        assert snap["timers"]["work"]["total_seconds"] >= 0.0

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timer("b") is reg.timer("b")

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["n"] == 4000


class TestRunRecord:
    def test_lifecycle_and_schema(self):
        rec = RunRecord.begin("ensemble", 3, 2, 100, 1e-9, 5)
        rec.observe_iteration(0.5, 3, 0, 0)
        rec.observe_iteration(0.1, 2, 1, 0)
        rec.observe_mask_event(2, 0, "converged")
        rec.add_phase("step", 0.01)
        rec.add_phase("step", 0.02)
        rec.finish(2, {"converged": 1, "undecided": 2})
        data = rec.to_dict()
        assert data["schema"] == RUN_RECORD_SCHEMA
        assert validate_run_record(data) == []
        assert data["phase_seconds"]["step"] == pytest.approx(0.03)
        assert data["steps"] == 2
        assert rec.wall_seconds >= 0.0

    def test_nonfinite_residuals_serialise_to_null(self):
        rec = RunRecord.begin("run", 1, 2, 10, 1e-9, 5)
        rec.observe_iteration(float("inf"), 0, 0, 1)
        data = rec.to_dict()
        assert data["residuals"] == [None]
        json.dumps(data, allow_nan=False)  # strict JSON must accept it

    def test_mask_history_reconstruction(self):
        rec = RunRecord.begin("ensemble", 2, 2, 10, 1e-9, 1)
        rec.observe_iteration(0.3, 2, 0, 0)
        rec.observe_iteration(0.2, 1, 1, 0)
        rec.observe_iteration(0.1, 0, 1, 1)
        rec.observe_mask_event(2, 1, "converged")
        rec.observe_mask_event(3, 0, "diverged")
        conv = rec.convergence_mask_history()
        div = rec.divergence_mask_history()
        assert conv == [[False, False], [False, True], [False, True]]
        assert div == [[False, False], [False, False], [True, False]]

    def test_validator_rejects_mismatched_series(self):
        rec = RunRecord.begin("run", 1, 2, 10, 1e-9, 5)
        rec.observe_iteration(0.5, 1, 0, 0)
        data = rec.to_dict()
        data["residuals"] = [0.5, 0.4]
        assert any("mismatched" in v for v in validate_run_record(data))

    def test_validator_rejects_bad_kind_and_schema(self):
        assert validate_run_record({"schema": RUN_RECORD_SCHEMA,
                                    "kind": "nope"})
        assert validate_run_record({"schema": "other", "kind": "sweep"})
        assert validate_run_record("not a dict")


class TestSweepRecord:
    def test_finalise_utilisation(self):
        rec = SweepRecord(n_items=8, executor="thread", workers=2)
        rec.n_chunks = 2
        rec.chunk_sizes = [4, 4]
        rec.chunk_seconds = [1.0, 1.0]
        rec.finalise(wall_seconds=1.0, effective_workers=2)
        assert rec.worker_utilisation == pytest.approx(1.0)
        assert validate_run_record(rec.to_dict()) == []

    def test_utilisation_capped_at_one(self):
        rec = SweepRecord(n_items=1, executor="serial", workers=1)
        rec.chunk_seconds = [5.0]
        rec.finalise(wall_seconds=0.001, effective_workers=1)
        assert rec.worker_utilisation == 1.0


class TestCollectorSessions:
    def test_no_session_by_default(self):
        assert active_session() is None
        assert not is_collecting()

    def test_nested_sessions_both_collect(self):
        system = _make_system(3)
        r0 = np.full(3, 0.1)
        with collect() as outer:
            with collect() as inner:
                system.run(r0, max_steps=500)
            assert len(inner.run_records) == 1
        assert len(outer.run_records) == 1
        assert active_session() is None

    def test_session_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collect():
                raise RuntimeError("boom")
        assert not is_collecting()

    def test_session_to_dict_shape(self):
        with collect() as session:
            sweep(_square, [1, 2, 3], workers=1)
        data = session.to_dict()
        assert data["sweep_records"][0]["kind"] == "sweep"
        assert data["metrics"] == {"counters": {}, "timers": {}}


class TestEngineTelemetry:
    def test_run_identical_with_and_without_telemetry(self):
        system = _make_system()
        r0 = np.array([0.1, 0.2, 0.15, 0.05])
        plain = system.run(r0, max_steps=2000)
        with collect():
            observed = system.run(r0, max_steps=2000)
        assert observed.outcome is plain.outcome
        assert observed.steps == plain.steps
        assert np.array_equal(observed.final, plain.final)
        assert plain.telemetry is None
        assert observed.telemetry is not None

    def test_run_record_contents(self):
        system = _make_system()
        r0 = np.full(4, 0.1)
        with collect() as session:
            traj = system.run(r0, max_steps=2000)
        rec = traj.telemetry
        assert rec in session.run_records
        assert rec.kind == "run"
        assert rec.steps == traj.steps
        assert len(rec.residuals) == traj.steps
        assert rec.outcome_counts == {traj.outcome.value: 1}
        assert "step" in rec.phase_seconds
        assert validate_run_record(rec.to_dict()) == []

    def test_ensemble_record_counts_and_masks(self):
        system = _make_system()
        rng = np.random.default_rng(7)
        starts = rng.uniform(0.0, 0.5, size=(8, 4))
        with collect() as session:
            result = system.run_ensemble(starts, max_steps=2000)
        rec = result.telemetry
        assert rec is session.run_records[-1]
        assert rec.kind == "ensemble"
        assert rec.n_members == 8
        expected = {o.value: c for o, c in result.outcome_counts().items()
                    if c}
        assert rec.outcome_counts == expected
        conv_hist = rec.convergence_mask_history()
        final_mask = np.array(conv_hist[-1])
        assert np.array_equal(final_mask,
                              result.outcome_mask(Outcome.CONVERGED))
        assert rec.active_members[-1] == 0 or rec.steps == 2000

    def test_telemetry_forced_on_without_session(self):
        system = _make_system(3)
        traj = system.run(np.full(3, 0.1), max_steps=500, telemetry=True)
        assert traj.telemetry is not None
        assert traj.telemetry.steps == traj.steps

    def test_telemetry_forced_off_inside_session(self):
        system = _make_system(3)
        with collect() as session:
            traj = system.run(np.full(3, 0.1), max_steps=500,
                              telemetry=False)
        assert traj.telemetry is None
        assert session.run_records == []

    def test_empty_ensemble_emits_finished_record(self):
        system = _make_system(3)
        with collect() as session:
            result = system.run_ensemble(np.empty((0, 3)), max_steps=100)
        assert len(result) == 0
        rec = session.run_records[0]
        assert rec.steps == 0
        assert rec.outcome_counts == {}


class TestSweepTelemetry:
    def test_pool_sweep_record(self):
        grid = list(range(12))
        with collect() as session:
            out = sweep(_square, grid, workers=2, executor="thread",
                        chunk_size=3)
        assert out == [x * x for x in grid]
        rec = session.sweep_records[0]
        assert rec.n_chunks == 4
        assert rec.chunk_sizes == [3, 3, 3, 3]
        assert len(rec.chunk_seconds) == 4
        assert not rec.serial
        assert rec.fallback_reason is None
        assert 0.0 <= rec.worker_utilisation <= 1.0

    def test_serial_sweep_record(self):
        with collect() as session:
            sweep(_square, [1, 2, 3], workers=1)
        rec = session.sweep_records[0]
        assert rec.serial
        assert rec.fallback_reason is None
        assert rec.chunk_sizes == [3]

    def test_no_record_without_session(self):
        session = CollectorSession()
        sweep(_square, [1, 2], workers=1)
        assert session.sweep_records == []


class TestProvenance:
    def test_config_hash_stable_under_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == \
            config_hash({"b": 2, "a": 1})

    def test_config_hash_distinguishes_content(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_provenance_block(self):
        prov = provenance(seed=7, config={"x": 1})
        assert prov["seed"] == 7
        assert prov["config_hash"] == config_hash({"x": 1})
        assert prov["numpy"] == np.__version__
        # Inside this repo the revision must resolve to a hex string.
        assert prov["git_revision"] is None or \
            len(prov["git_revision"]) == 40


def _result(**overrides):
    kwargs = dict(experiment_id="TX", title="test artifact",
                  columns=("a", "b"), rows=[(1, 2.0), (3, float("inf"))],
                  checks={"ok": True}, notes=["a note"])
    kwargs.update(overrides)
    return ExperimentResult(**kwargs)


class TestArtifacts:
    def test_round_trip_is_schema_valid(self, tmp_path):
        with collect() as session:
            _make_system(3).run(np.full(3, 0.1), max_steps=500)
        path = write_experiment_artifact(
            _result(), tmp_path, session=session, seed=3,
            config={"n": 3})
        assert path == tmp_path / "TX.json"
        data = json.loads(path.read_text())
        assert validate_artifact(data) == []
        assert data["schema"] == ARTIFACT_SCHEMA
        assert data["experiment"]["rows"][1] == [3, None]  # inf -> null
        assert len(data["observability"]["run_records"]) == 1
        assert data["provenance"]["config_hash"] == \
            config_hash({"n": 3})

    def test_artifact_without_session(self):
        artifact = experiment_artifact(_result())
        assert validate_artifact(artifact) == []
        assert artifact["observability"]["run_records"] == []

    def test_writer_refuses_invalid_artifact(self, tmp_path):
        artifact = experiment_artifact(_result())
        del artifact["provenance"]
        with pytest.raises(ValueError):
            write_artifact(artifact, tmp_path / "bad.json")
        assert not (tmp_path / "bad.json").exists()

    def test_validator_catches_row_shape(self):
        artifact = experiment_artifact(_result())
        artifact["experiment"]["rows"][0] = [1]
        assert any("rows[0]" in v for v in validate_artifact(artifact))

    def test_numpy_values_serialise(self, tmp_path):
        result = _result(rows=[(np.int64(1), np.float64(2.5)),
                               (np.int64(3), np.float64(4.5))])
        path = write_experiment_artifact(result, tmp_path)
        data = json.loads(path.read_text())
        assert data["experiment"]["rows"][0] == [1, 2.5]
