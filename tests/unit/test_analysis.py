"""Unit tests for the iterated-map analysis toolkit."""

import math

import numpy as np
import pytest

from repro.analysis.bifurcation import (bifurcation_diagram,
                                        quadratic_map_sweep)
from repro.analysis.classify import Regime, classify_tail
from repro.analysis.lyapunov import lyapunov_exponent
from repro.analysis.maps import (QuadraticRateMap, orbit, orbit_tail,
                                 quadratic_lyapunov_exponents,
                                 quadratic_orbit_tails)
from repro.errors import RateVectorError


class TestQuadraticRateMap:
    def test_fixed_point(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        assert m.fixed_point == pytest.approx(0.5)
        assert m(0.5) == pytest.approx(0.5)

    def test_multiplier(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        assert m.multiplier == pytest.approx(0.0)  # 1 - 2*1*0.5

    def test_stability_threshold(self):
        assert QuadraticRateMap(a=1.9, beta=0.25).is_linearly_stable
        assert not QuadraticRateMap(a=2.1, beta=0.25).is_linearly_stable
        assert QuadraticRateMap(a=1.0, beta=0.25).period_doubling_gain \
            == pytest.approx(2.0)

    def test_truncation(self):
        m = QuadraticRateMap(a=10.0, beta=0.01)
        assert m(5.0) == 0.0
        free = QuadraticRateMap(a=10.0, beta=0.01, truncate=False)
        assert free(5.0) < 0.0

    def test_derivative_on_clamped_branch_is_zero(self):
        m = QuadraticRateMap(a=10.0, beta=0.01)
        assert m.derivative(5.0) == 0.0
        assert m.derivative(0.05) == pytest.approx(1.0 - 2 * 10 * 0.05)

    def test_from_system(self):
        m = QuadraticRateMap.from_system(8, eta=0.25, beta=0.25)
        assert m.a == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(RateVectorError):
            QuadraticRateMap(a=0.0, beta=0.25)
        with pytest.raises(RateVectorError):
            QuadraticRateMap(a=1.0, beta=-1.0)
        with pytest.raises(RateVectorError):
            QuadraticRateMap.from_system(0, eta=0.1, beta=0.25)


class TestOrbit:
    def test_length_with_initial(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        o = orbit(m, 0.1, steps=10)
        assert o.shape == (11,)
        assert o[0] == 0.1

    def test_discard(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        o = orbit(m, 0.1, steps=10, discard=5)
        assert o.shape == (5,)

    def test_convergence_to_fixed_point(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        o = orbit(m, 0.1, steps=200)
        assert o[-1] == pytest.approx(0.5, abs=1e-8)

    def test_divergence_raises(self):
        with pytest.raises(RateVectorError):
            orbit(lambda x: 2 * x + 1, 1.0, steps=2000)

    def test_bad_args(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        with pytest.raises(RateVectorError):
            orbit(m, 0.1, steps=0)
        with pytest.raises(RateVectorError):
            orbit(m, 0.1, steps=5, discard=9)

    def test_orbit_tail_shape(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        assert orbit_tail(m, 0.1, transient=50, keep=20).shape == (20,)


class TestClassify:
    def test_fixed_point(self):
        tail = np.full(200, 0.5)
        cls = classify_tail(tail, max_period=32)
        assert cls.regime is Regime.FIXED_POINT
        assert cls.period == 1

    def test_period_two(self):
        tail = np.tile([0.2, 0.8], 100)
        cls = classify_tail(tail, max_period=32)
        assert cls.regime is Regime.PERIODIC
        assert cls.period == 2

    def test_smallest_period_reported(self):
        tail = np.tile([0.2, 0.8], 100)
        # period 4 also matches, but 2 must win
        assert classify_tail(tail, max_period=32).period == 2

    def test_aperiodic(self):
        rng = np.random.default_rng(0)
        tail = rng.random(300)
        cls = classify_tail(tail, max_period=32)
        assert cls.regime is Regime.APERIODIC
        assert cls.period is None

    def test_too_short_rejected(self):
        with pytest.raises(RateVectorError):
            classify_tail(np.zeros(10), max_period=32)

    def test_str(self):
        tail = np.tile([0.2, 0.8], 100)
        assert str(classify_tail(tail, max_period=8)) == "periodic(2)"


class TestLyapunov:
    def test_negative_at_stable_fixed_point(self):
        m = QuadraticRateMap(a=1.5, beta=0.25)
        lam = lyapunov_exponent(m, m.derivative, 0.3, steps=2000,
                                discard=500)
        # |F'(x*)| = |1 - 1.5| = 0.5 -> log 0.5
        assert lam == pytest.approx(math.log(0.5), abs=1e-6)

    def test_positive_in_chaotic_band(self):
        m = QuadraticRateMap(a=2.62, beta=0.25, truncate=False)
        lam = lyapunov_exponent(m, m.derivative, 0.4, steps=6000,
                                discard=2000)
        assert lam > 0.05

    def test_validation(self):
        m = QuadraticRateMap(a=1.0, beta=0.25)
        with pytest.raises(RateVectorError):
            lyapunov_exponent(m, m.derivative, 0.1, steps=0)


class TestBifurcation:
    def test_quadratic_sweep_regimes(self):
        pts = quadratic_map_sweep([1.0, 2.3], beta=0.25, transient=2000,
                                  keep=256)
        assert pts[0].classification.regime is Regime.FIXED_POINT
        assert pts[1].classification.regime is Regime.PERIODIC

    def test_point_fields(self):
        (pt,) = quadratic_map_sweep([1.5], beta=0.25, transient=1000,
                                    keep=256)
        assert pt.parameter == 1.5
        assert pt.attractor.shape == (256,)
        assert pt.n_branches == 1
        assert math.isfinite(pt.lyapunov)

    def test_keep_too_small_rejected(self):
        with pytest.raises(RateVectorError):
            bifurcation_diagram(
                lambda a: QuadraticRateMap(a=a, beta=0.25),
                [1.0], x0=0.1, keep=10, max_period=64)

    def test_no_derivative_gives_nan(self):
        pts = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25),
            [1.0], x0=0.1, transient=500, keep=200, max_period=32)
        assert math.isnan(pts[0].lyapunov)

    def test_continuation_default_off_is_bit_identical(self):
        gains = [1.0, 1.5, 2.3]
        kwargs = dict(x0=0.1, transient=800, keep=200, max_period=32)
        cold = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25), gains, **kwargs)
        default = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25), gains,
            continuation=False, **kwargs)
        for pt, dpt in zip(cold, default):
            assert np.array_equal(pt.attractor, dpt.attractor)

    def test_continuation_agrees_in_stable_regime(self):
        # Below the period-doubling gain the fixed point is the unique
        # attractor, so warm starts must land on the same answer with
        # a much shorter transient.
        gains = np.linspace(0.6, 1.8, 13)
        cold = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25), gains,
            x0=0.1, transient=3000, keep=200, max_period=32)
        warm = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25), gains,
            x0=0.1, transient=300, keep=200, max_period=32,
            continuation=True)
        for cpt, wpt in zip(cold, warm):
            assert cpt.classification.regime is wpt.classification.regime
            assert np.max(np.abs(cpt.attractor - wpt.attractor)) < 1e-6


class TestVectorizedQuadraticGrid:
    GAINS = [0.5, 1.0, 1.5, 2.3, 2.62]

    def test_orbit_tails_match_scalar(self):
        for truncate in (True, False):
            tails = quadratic_orbit_tails(self.GAINS, beta=0.25, x0=0.4,
                                          transient=1500, keep=64,
                                          truncate=truncate)
            for i, a in enumerate(self.GAINS):
                m = QuadraticRateMap(a=a, beta=0.25, truncate=truncate)
                expect = orbit_tail(m, 0.4, transient=1500, keep=64)
                assert np.array_equal(tails[i], expect)

    def test_zero_transient_includes_x0(self):
        tails = quadratic_orbit_tails([1.0], beta=0.25, x0=0.4,
                                      transient=0, keep=5)
        assert tails.shape == (1, 6)
        assert tails[0, 0] == 0.4

    def test_lyapunov_match_scalar(self):
        lams = quadratic_lyapunov_exponents(self.GAINS, beta=0.25, x0=0.4,
                                            steps=2000, discard=500,
                                            truncate=False)
        for i, a in enumerate(self.GAINS):
            m = QuadraticRateMap(a=a, beta=0.25, truncate=False)
            expect = lyapunov_exponent(m, m.derivative, 0.4, steps=2000,
                                       discard=500)
            assert lams[i] == pytest.approx(expect, abs=1e-12)

    def test_sweep_matches_generic_diagram(self):
        pts = quadratic_map_sweep(self.GAINS, beta=0.25, x0=0.4,
                                  transient=1200, keep=256)
        generic = bifurcation_diagram(
            lambda a: QuadraticRateMap(a=a, beta=0.25),
            self.GAINS, x0=0.4, transient=1200, keep=256,
            derivative_family=lambda a: QuadraticRateMap(
                a=a, beta=0.25).derivative)
        for pt, gpt in zip(pts, generic):
            assert np.array_equal(pt.attractor, gpt.attractor)
            assert pt.classification.regime is gpt.classification.regime
            assert pt.lyapunov == pytest.approx(gpt.lyapunov, abs=1e-12)

    def test_validation(self):
        with pytest.raises(RateVectorError):
            quadratic_orbit_tails([], beta=0.25, x0=0.1)
        with pytest.raises(RateVectorError):
            quadratic_orbit_tails([1.0, -1.0], beta=0.25, x0=0.1)
        with pytest.raises(RateVectorError):
            quadratic_orbit_tails([1.0], beta=-1.0, x0=0.1)
        with pytest.raises(RateVectorError):
            quadratic_lyapunov_exponents([1.0], beta=0.25, x0=0.1, steps=0)
