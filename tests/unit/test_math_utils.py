"""Unit tests for repro.core.math_utils."""

import math

import numpy as np
import pytest

from repro.core.math_utils import (as_rate_vector, clip_nonnegative, g,
                                   g_inverse, inverse_permutation,
                                   is_close_vector, pairs, relative_error,
                                   sorted_order, sup_norm)
from repro.errors import RateVectorError


class TestG:
    def test_zero(self):
        assert g(0.0) == 0.0

    def test_half(self):
        assert g(0.5) == pytest.approx(1.0)

    def test_known_value(self):
        assert g(0.8) == pytest.approx(4.0)

    def test_overload_is_inf(self):
        assert math.isinf(g(1.0))
        assert math.isinf(g(1.5))

    def test_vectorised(self):
        out = g(np.array([0.0, 0.5, 1.0]))
        assert out[0] == 0.0
        assert out[1] == pytest.approx(1.0)
        assert math.isinf(out[2])

    def test_scalar_in_scalar_out(self):
        assert isinstance(g(0.3), float)

    def test_negative_rejected(self):
        with pytest.raises(RateVectorError):
            g(-0.1)

    def test_strictly_increasing(self):
        xs = np.linspace(0.0, 0.99, 50)
        ys = g(xs)
        assert np.all(np.diff(ys) > 0)


class TestGInverse:
    def test_roundtrip(self):
        for x in (0.0, 0.1, 0.5, 0.9, 0.999):
            assert g_inverse(g(x)) == pytest.approx(x)

    def test_inf_maps_to_one(self):
        assert g_inverse(math.inf) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(RateVectorError):
            g_inverse(-1.0)

    def test_vectorised(self):
        q = np.array([0.0, 1.0, math.inf])
        out = g_inverse(q)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.5)
        assert out[2] == 1.0


class TestAsRateVector:
    def test_accepts_list(self):
        vec = as_rate_vector([0.1, 0.2])
        assert vec.dtype == float
        assert vec.shape == (2,)

    def test_copies_input(self):
        src = np.array([0.1, 0.2])
        vec = as_rate_vector(src)
        vec[0] = 99.0
        assert src[0] == 0.1

    def test_length_check(self):
        with pytest.raises(RateVectorError):
            as_rate_vector([0.1, 0.2], n=3)

    def test_rejects_negative(self):
        with pytest.raises(RateVectorError):
            as_rate_vector([0.1, -0.2])

    def test_rejects_nan(self):
        with pytest.raises(RateVectorError):
            as_rate_vector([0.1, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(RateVectorError):
            as_rate_vector([0.1, float("inf")])

    def test_rejects_2d(self):
        with pytest.raises(RateVectorError):
            as_rate_vector(np.zeros((2, 2)))


class TestPermutations:
    def test_sorted_order_basic(self):
        order = sorted_order([0.3, 0.1, 0.2])
        assert list(order) == [1, 2, 0]

    def test_sorted_order_stable_on_ties(self):
        order = sorted_order([0.2, 0.1, 0.2])
        assert list(order) == [1, 0, 2]

    def test_inverse_permutation_roundtrip(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(10)
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(10))
        assert np.array_equal(inv[perm], np.arange(10))


class TestNorms:
    def test_relative_error_zero_on_equal_zeros(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_relative_error_scaling(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_sup_norm(self):
        assert sup_norm([1.0, 2.0], [1.5, 2.0]) == pytest.approx(0.5)

    def test_sup_norm_shape_mismatch(self):
        with pytest.raises(RateVectorError):
            sup_norm([1.0], [1.0, 2.0])

    def test_is_close_vector_true(self):
        assert is_close_vector([1.0, 2.0], [1.0, 2.0 + 1e-12])

    def test_is_close_vector_shape_mismatch_false(self):
        assert not is_close_vector([1.0], [1.0, 2.0])

    def test_clip_nonnegative(self):
        out = clip_nonnegative(np.array([-1.0, 0.0, 2.0]))
        assert np.array_equal(out, [0.0, 0.0, 2.0])

    def test_pairs(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]
