"""Unit tests for the resilient sweep executor (repro.parallel).

Infrastructure failures are injected deterministically through the
module's ``_submit`` seam, so every scenario — retry, salvage, timeout,
kill-and-resume — is reproducible without real process crashes.
"""

import os
import warnings

import pytest

import repro.parallel as parallel_mod
from repro.errors import SweepError, WorkerFunctionError
from repro.observability import collect
from repro.parallel import sweep


def _square(x):
    return x * x


GRID = list(range(17))
BASELINE = [_square(x) for x in GRID]


class _FailingFuture:
    """A future whose result is a chosen infrastructure failure."""

    def __init__(self, exc):
        self.exc = exc
        self.cancelled = False

    def result(self, timeout=None):
        raise self.exc

    def cancel(self):
        self.cancelled = True


def _patched_submit(monkeypatch, decide):
    """Route chunk submissions through ``decide(first_index, round)``.

    ``decide`` returns an exception instance to fail that chunk this
    round, or ``None`` to run it for real.
    """
    real = parallel_mod._submit
    rounds = {}

    def fake(pool, fn, items, first_index):
        attempt = rounds.get(first_index, 0)
        rounds[first_index] = attempt + 1
        exc = decide(first_index, attempt)
        if exc is not None:
            return _FailingFuture(exc)
        return real(pool, fn, items, first_index)

    monkeypatch.setattr(parallel_mod, "_submit", fake)
    return rounds


class TestErrorClassification:
    def test_fn_error_propagates_with_grid_index(self):
        calls = []

        def boom(x):
            calls.append(x)
            if x == 7:
                raise ValueError("bad point")
            return x

        with pytest.raises(WorkerFunctionError) as err:
            sweep(boom, GRID, workers=2, executor="thread")
        assert err.value.grid_index == 7
        assert isinstance(err.value.__cause__, ValueError)
        # no full-grid rerun: nothing was evaluated more than once
        assert len(calls) == len(set(calls))

    def test_fn_error_in_serial_salvage_keeps_grid_index(self):
        def boom(x):
            if x == 3:
                raise KeyError("boom")
            return x

        def always_fail(first, attempt):
            return OSError("synthetic pool loss")

        with pytest.MonkeyPatch.context() as mp:
            _patched_submit(mp, always_fail)
            with pytest.warns(RuntimeWarning, match="fell back to serial"):
                with pytest.raises(WorkerFunctionError) as err:
                    sweep(boom, GRID, workers=2, executor="thread",
                          retries=0, backoff=0.0)
        assert err.value.grid_index == 3
        assert isinstance(err.value.__cause__, KeyError)

    def test_parameter_validation(self):
        for kwargs in ({"timeout": 0.0}, {"timeout": -1.0},
                       {"retries": -1}, {"retries": 1.5},
                       {"backoff": -0.1}):
            with pytest.raises(SweepError):
                sweep(_square, GRID, workers=2, **kwargs)


class TestRetryAndSalvage:
    def test_transient_infra_failure_is_retried(self, monkeypatch):
        rounds = _patched_submit(
            monkeypatch,
            lambda first, attempt:
                OSError("flaky pool") if attempt == 0 else None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # retry must not warn
            with collect() as session:
                out = sweep(_square, GRID, workers=2, executor="thread",
                            retries=2, backoff=0.0)
        assert out == BASELINE
        rec = session.sweep_records[0]
        assert rec.retry_rounds >= 1
        assert rec.salvaged_chunks == []
        assert not rec.serial
        assert max(rounds.values()) == 2  # each chunk tried twice

    def test_exhausted_retries_salvage_only_failing_chunks(
            self, monkeypatch):
        _patched_submit(
            monkeypatch,
            lambda first, attempt:
                OSError("dead chunk") if first == 0 else None)
        calls = []

        def counted(x):
            calls.append(x)
            return _square(x)

        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            with collect() as session:
                out = sweep(counted, GRID, workers=2, executor="thread",
                            chunk_size=5, retries=1, backoff=0.0)
        assert out == BASELINE
        # every grid item computed exactly once — the healthy chunks
        # were salvaged from the pool, not recomputed
        assert sorted(calls) == GRID
        rec = session.sweep_records[0]
        assert rec.salvaged_chunks == [0]
        assert rec.fallback_reason is not None
        assert not rec.serial  # most chunks did run on the pool

    def test_timeout_is_an_infra_failure(self, monkeypatch):
        _patched_submit(
            monkeypatch,
            lambda first, attempt:
                TimeoutError("too slow") if attempt == 0 else None)
        out = sweep(_square, GRID, workers=2, executor="thread",
                    timeout=30.0, retries=1, backoff=0.0)
        assert out == BASELINE

    def test_nonretryable_infra_failure_skips_retry_rounds(
            self, monkeypatch):
        attempts = _patched_submit(
            monkeypatch,
            lambda first, attempt: RuntimeError("does not pickle"))
        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            with collect() as session:
                out = sweep(_square, GRID, workers=2, executor="thread",
                            retries=3, backoff=10.0)  # no sleeps happen
        assert out == BASELINE
        assert session.sweep_records[0].retry_rounds == 0
        assert max(attempts.values()) == 1


class TestCheckpointResume:
    def test_checkpointed_sweep_matches_plain_run(self, tmp_path):
        out = sweep(_square, GRID, workers=2, executor="thread",
                    checkpoint_dir=tmp_path)
        assert out == BASELINE
        assert (tmp_path / "manifest.json").exists()
        assert any(p.suffix == ".pkl" for p in tmp_path.iterdir())

    def test_killed_then_resumed_is_identical(self, tmp_path):
        state = {"alive": False}

        def dies_midway(x):
            if not state["alive"] and x >= 9:
                raise ValueError("simulated crash")
            return _square(x)

        # First attempt dies after some chunks were checkpointed.
        with pytest.raises(WorkerFunctionError):
            sweep(dies_midway, GRID, executor="serial", chunk_size=3,
                  checkpoint_dir=tmp_path)
        done_before = [p for p in tmp_path.iterdir()
                       if p.suffix == ".pkl"]
        assert done_before  # progress survived the crash

        # The resumed run recomputes only what is missing...
        state["alive"] = True
        calls = []

        def counted(x):
            calls.append(x)
            return _square(x)

        with collect() as session:
            out = sweep(counted, GRID, executor="serial", chunk_size=3,
                        checkpoint_dir=tmp_path)
        # ...and the final results are identical to an uninterrupted run.
        assert out == BASELINE
        assert calls and len(calls) < len(GRID)
        rec = session.sweep_records[0]
        assert rec.resumed_chunks == sorted(
            int(p.stem.split("_")[1]) for p in done_before)

    def test_fully_checkpointed_resume_recomputes_nothing(self, tmp_path):
        sweep(_square, GRID, executor="serial", chunk_size=4,
              checkpoint_dir=tmp_path)

        def must_not_run(x):
            raise AssertionError("checkpointed item recomputed")

        assert sweep(must_not_run, GRID, executor="serial", chunk_size=4,
                     checkpoint_dir=tmp_path) == BASELINE

    def test_corrupt_chunk_is_recomputed(self, tmp_path):
        sweep(_square, GRID, executor="serial", chunk_size=4,
              checkpoint_dir=tmp_path)
        victim = sorted(p for p in tmp_path.iterdir()
                        if p.suffix == ".pkl")[1]
        victim.write_bytes(b"not a pickle")
        out = sweep(_square, GRID, executor="serial", chunk_size=4,
                    checkpoint_dir=tmp_path)
        assert out == BASELINE

    def test_mismatched_grid_is_rejected(self, tmp_path):
        sweep(_square, GRID, executor="serial", chunk_size=4,
              checkpoint_dir=tmp_path)
        with pytest.raises(SweepError):
            sweep(_square, GRID[:5], executor="serial", chunk_size=4,
                  checkpoint_dir=tmp_path)
        with pytest.raises(SweepError):
            sweep(_square, GRID, executor="serial", chunk_size=6,
                  checkpoint_dir=tmp_path)

    def test_atomic_writes_leave_no_tmp_files(self, tmp_path):
        sweep(_square, GRID, executor="serial", chunk_size=4,
              checkpoint_dir=tmp_path)
        assert not [p for p in tmp_path.iterdir()
                    if p.name.endswith(".tmp")]

    def test_unreadable_manifest_is_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken json")
        with pytest.raises(SweepError):
            sweep(_square, GRID, executor="serial", chunk_size=4,
                  checkpoint_dir=tmp_path)


class TestProcessPoolIntegration:
    """One real end-to-end run per scenario that must survive pickling."""

    def test_process_pool_with_checkpoint(self, tmp_path):
        out = sweep(_square, GRID, workers=2, executor="process",
                    checkpoint_dir=tmp_path)
        assert out == BASELINE
        # resume path loads everything back through pickle
        assert sweep(_square, GRID, workers=2, executor="process",
                     checkpoint_dir=tmp_path) == BASELINE

    def test_process_pool_fn_error_grid_index(self):
        with pytest.raises(WorkerFunctionError) as err:
            sweep(_process_boom, GRID, workers=2, executor="process")
        assert err.value.grid_index == 11


def _process_boom(x):
    if x == 11:
        raise ValueError("bad point in worker")
    return x
