"""Unit tests for the scenario-fuzzing subsystem's building blocks:
spec validation and serialisation, deterministic generation, budget
validation, and the shrinker's structural edits."""

import json

import numpy as np
import pytest

from repro.errors import OracleError, ScenarioError, SweepError
from repro.scenarios import (SCENARIO_SCHEMA, ConnectionSpec,
                             ControllerSpec, FaultPlanSpec, GatewaySpec,
                             InjectorSpec, RuleSpec, ScenarioSpec,
                             SignalSpec, generate, generate_spec,
                             oracle_names, run_oracle, validate_budget)
from repro.scenarios.generator import MAX_SHRINK_ITERS
from repro.scenarios.oracles import ScenarioContext


def small_spec(**overrides):
    """A hand-built two-connection scenario, overridable per test."""
    base = dict(
        name="unit",
        gateways=(GatewaySpec("g0", 1.0),),
        connections=(ConnectionSpec("c0", ("g0",)),
                     ConnectionSpec("c1", ("g0",))),
        discipline="fair-share",
        signal=SignalSpec(),
        style="individual",
        rules=(RuleSpec("proportional-target",
                        {"eta": 0.5, "beta": 0.4}),) * 2,
        initial_rates=(0.2, 0.3),
        max_steps=800,
        seed=5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecValidation:
    def test_builds_and_runs(self):
        spec = small_spec()
        traj = spec.build().run(spec.initial(), max_steps=spec.max_steps)
        assert traj.final.shape == (2,)

    def test_rule_count_must_match_connections(self):
        with pytest.raises(ScenarioError, match="one rule per"):
            small_spec(rules=(RuleSpec("target", {}),))

    def test_initial_rate_count_must_match(self):
        with pytest.raises(ScenarioError, match="one initial rate"):
            small_spec(initial_rates=(0.2,))

    def test_initial_rates_strictly_positive(self):
        with pytest.raises(ScenarioError, match="strictly"):
            small_spec(initial_rates=(0.2, 0.0))

    def test_unknown_rule_kind(self):
        with pytest.raises(ScenarioError, match="unknown rule kind"):
            RuleSpec("tcp-cubic", {})

    def test_unknown_rule_parameter(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            RuleSpec("target", {"eta": 0.1, "gamma": 2.0})

    def test_unknown_signal_kind(self):
        with pytest.raises(ScenarioError, match="unknown signal kind"):
            SignalSpec("sigmoid", 1.0)

    def test_unknown_discipline(self):
        with pytest.raises(ScenarioError, match="unknown discipline"):
            small_spec(discipline="round-robin")

    def test_path_through_unknown_gateway(self):
        with pytest.raises(ScenarioError, match="unknown gateways"):
            small_spec(connections=(ConnectionSpec("c0", ("g0",)),
                                    ConnectionSpec("c1", ("gX",))))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            small_spec(connections=(ConnectionSpec("c0", ("g0",)),
                                    ConnectionSpec("c0", ("g0",))))

    def test_weighted_requires_weights(self):
        with pytest.raises(ScenarioError, match="requires weights"):
            small_spec(discipline="weighted-fair-share")

    def test_weighted_requires_full_crossing(self):
        with pytest.raises(ScenarioError, match="every connection"):
            small_spec(
                gateways=(GatewaySpec("g0", 1.0), GatewaySpec("g1", 1.0)),
                connections=(ConnectionSpec("c0", ("g0", "g1")),
                             ConnectionSpec("c1", ("g0",))),
                discipline="weighted-fair-share",
                weights=(1.0, 2.0))

    def test_weighted_full_crossing_accepted(self):
        spec = small_spec(discipline="weighted-fair-share",
                          weights=(1.0, 2.0))
        assert spec.build().scheme.weights is not None

    def test_rule_params_order_is_canonical(self):
        a = RuleSpec("target", {"eta": 0.1, "beta": 0.5})
        b = RuleSpec("target", (("beta", 0.5), ("eta", 0.1)))
        assert a == b and hash(a) == hash(b)

    def test_bad_injector_params_fail_at_spec_level(self):
        # ExtraDelay(0, 0) is a no-op the fault layer rejects; the spec
        # layer must surface that as ScenarioError at build time.
        plan = FaultPlanSpec(
            seed=1,
            injectors=(InjectorSpec("delay",
                                    {"delay": 0, "jitter": 0}),))
        with pytest.raises(ScenarioError, match="injector"):
            plan.build()

    def test_homogeneous_rules_share_one_object(self):
        system = small_spec().build()
        assert system.rules[0] is system.rules[1]
        assert system.homogeneous


class TestSpecSerialisation:
    def test_json_round_trip_exact(self):
        spec = small_spec(
            fault_plan=FaultPlanSpec(
                seed=3,
                injectors=(InjectorSpec("loss",
                                        {"rate": 0.25,
                                         "connections": (0,)}),)))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_schema_field_embedded(self):
        data = json.loads(small_spec().to_json())
        assert data["schema"] == SCENARIO_SCHEMA

    def test_wrong_schema_rejected(self):
        data = small_spec().to_dict()
        data["schema"] = "repro.scenario-spec/v999"
        with pytest.raises(ScenarioError, match="unsupported"):
            ScenarioSpec.from_dict(data)

    def test_missing_field_rejected(self):
        data = small_spec().to_dict()
        del data["rules"]
        with pytest.raises(ScenarioError, match="missing field"):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")


class TestStructuralEdits:
    def test_drop_connection_prunes_unused_gateways(self):
        spec = small_spec(
            gateways=(GatewaySpec("g0", 1.0), GatewaySpec("g1", 2.0)),
            connections=(ConnectionSpec("c0", ("g0",)),
                         ConnectionSpec("c1", ("g1",))))
        dropped = spec.drop_connection(1)
        assert dropped.num_connections == 1
        assert tuple(g.name for g in dropped.gateways) == ("g0",)
        assert dropped.initial_rates == (0.2,)

    def test_drop_connection_keeps_weights_aligned(self):
        spec = small_spec(discipline="weighted-fair-share",
                          weights=(1.0, 2.0))
        assert spec.drop_connection(0).weights == (2.0,)

    def test_cannot_drop_last_connection(self):
        spec = small_spec().drop_connection(0)
        with pytest.raises(ScenarioError, match="last connection"):
            spec.drop_connection(0)

    def test_rounding_never_produces_zero(self):
        spec = small_spec(initial_rates=(0.004, 0.3))
        rounded = spec.with_rounded_values(1)
        assert min(rounded.initial_rates) > 0


class TestGenerator:
    def test_same_seed_same_specs(self):
        assert generate(3, 20) == generate(3, 20)

    def test_index_addressable(self):
        specs = generate(3, 20)
        for i in (0, 7, 19):
            assert generate_spec(3, i) == specs[i]

    def test_different_seeds_differ(self):
        assert generate(3, 10) != generate(4, 10)

    def test_generated_specs_build_and_round_trip(self):
        for spec in generate(5, 15):
            spec.build()
            spec.build_fault_plan()
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_families_covered(self):
        specs = generate(7, 60)
        assert {s.discipline for s in specs} == {
            "fifo", "fair-share", "weighted-fair-share"}
        assert {s.style for s in specs} == {"aggregate", "individual"}
        assert any(s.fault_plan is not None for s in specs)
        assert any(not s.homogeneous for s in specs)
        assert any(len(s.gateways) > 1 for s in specs)


class TestBudgetValidation:
    def test_valid_budget_passes_through(self):
        assert validate_budget(7, 50) == (7, 50, MAX_SHRINK_ITERS)

    @pytest.mark.parametrize("count", [0, -1, -50])
    def test_nonpositive_count_rejected(self, count):
        with pytest.raises(SweepError, match="count must be positive"):
            validate_budget(7, count)

    @pytest.mark.parametrize("seed", [1.5, "7", None, True])
    def test_non_integer_seed_rejected(self, seed):
        with pytest.raises(SweepError, match="seed must be"):
            validate_budget(seed, 10)

    @pytest.mark.parametrize("count", [2.0, "10", False])
    def test_non_integer_count_rejected(self, count):
        with pytest.raises(SweepError, match="count must be"):
            validate_budget(7, count)

    def test_negative_seed_rejected(self):
        with pytest.raises(SweepError, match=">= 0"):
            validate_budget(-1, 10)

    def test_shrink_iters_clamped_not_rejected(self):
        assert validate_budget(7, 1, 10**9)[2] == MAX_SHRINK_ITERS
        assert validate_budget(7, 1, -5)[2] == 1
        assert validate_budget(7, 1, 17)[2] == 17

    def test_numpy_integers_accepted(self):
        seed, count, _ = validate_budget(np.int64(7), np.int64(3))
        assert (seed, count) == (7, 3)


class TestOracleDispatch:
    def test_unknown_oracle_name_raises(self):
        ctx = ScenarioContext(small_spec())
        with pytest.raises(OracleError, match="unknown oracle"):
            run_oracle("vibes", ctx)

    def test_catalogue_names_are_stable(self):
        assert "batch-equivalence" in oracle_names()
        assert "tsi" in oracle_names()
        assert "fault-determinism" in oracle_names()


class TestControllerSpec:
    def controlled_spec(self, **overrides):
        base = dict(
            rules=(RuleSpec("rcp-source"),) * 2,
            controller=ControllerSpec("rcp", {"alpha": 0.5,
                                              "beta": 0.05,
                                              "fill": 0.4}))
        base.update(overrides)
        return small_spec(**base)

    def test_round_trips_through_json(self):
        spec = self.controlled_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.controller.params == spec.controller.params

    def test_build_produces_controlled_system(self):
        system = self.controlled_spec().build()
        assert system.controlled
        assert system.controller.alpha == 0.5

    def test_unknown_controller_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ControllerSpec("xcp", {})

    def test_controller_requires_rcp_source_rules(self):
        with pytest.raises(ScenarioError):
            self.controlled_spec(
                rules=(RuleSpec("target", {"eta": 0.1, "beta": 0.5}),) * 2)

    def test_rcp_source_rules_require_controller(self):
        with pytest.raises(ScenarioError):
            small_spec(rules=(RuleSpec("rcp-source"),) * 2)

    def test_controller_excludes_fault_plan(self):
        plan = FaultPlanSpec(
            seed=1, injectors=(InjectorSpec("delay", {"delay": 1,
                                                      "jitter": 0}),))
        with pytest.raises(ScenarioError):
            self.controlled_spec(fault_plan=plan)


class TestGeneratorZoo:
    def test_zoo_scenarios_are_deterministic(self):
        for index in range(40):
            assert generate_spec(23, index) == generate_spec(23, index)

    def test_zoo_produces_both_controller_kinds(self):
        specs = generate(23, 60)
        assert any(s.controller is not None for s in specs)
        assert any(s.controller is None and s.homogeneous
                   and s.rules[0].kind == "tcp-like" for s in specs)

    def test_rcp_scenarios_are_well_formed(self):
        for spec in generate(23, 60):
            if spec.controller is None:
                continue
            assert spec.fault_plan is None
            assert all(r.kind == "rcp-source" for r in spec.rules)
            alpha = dict(spec.controller.params)["alpha"]
            assert 0.3 <= alpha <= 0.8  # safely inside s < 2
            spec.build()  # must construct a controlled system
