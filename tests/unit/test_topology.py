"""Unit tests for repro.core.topology."""

import numpy as np
import pytest

from repro.core.topology import (Connection, Gateway, Network, parking_lot,
                                 random_network, single_gateway, tandem,
                                 two_gateway_shared)
from repro.errors import TopologyError


class TestGateway:
    def test_valid(self):
        gw = Gateway("g", 2.0, 0.5)
        assert gw.mu == 2.0 and gw.latency == 0.5

    def test_default_latency_zero(self):
        assert Gateway("g", 1.0).latency == 0.0

    @pytest.mark.parametrize("mu", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_mu(self, mu):
        with pytest.raises(TopologyError):
            Gateway("g", mu)

    @pytest.mark.parametrize("lat", [-0.1, float("inf")])
    def test_bad_latency(self, lat):
        with pytest.raises(TopologyError):
            Gateway("g", 1.0, lat)

    def test_empty_name(self):
        with pytest.raises(TopologyError):
            Gateway("", 1.0)


class TestConnection:
    def test_path_tuple(self):
        conn = Connection("c", ["a", "b"])
        assert conn.path == ("a", "b")

    def test_empty_path(self):
        with pytest.raises(TopologyError):
            Connection("c", ())

    def test_duplicate_gateway_on_path(self):
        with pytest.raises(TopologyError):
            Connection("c", ("a", "a"))


class TestNetwork:
    def test_gamma_and_members(self):
        net = two_gateway_shared()
        assert net.gamma(0) == ("ga", "gb")
        assert net.connections_at("ga") == (0, 1)
        assert net.connections_at("gb") == (0, 2)
        assert net.n_at("ga") == 2

    def test_duplicate_gateway_name(self):
        with pytest.raises(TopologyError):
            Network([Gateway("g", 1.0), Gateway("g", 2.0)],
                    [Connection("c", ("g",))])

    def test_duplicate_connection_name(self):
        with pytest.raises(TopologyError):
            Network([Gateway("g", 1.0)],
                    [Connection("c", ("g",)), Connection("c", ("g",))])

    def test_unknown_gateway_in_path(self):
        with pytest.raises(TopologyError):
            Network([Gateway("g", 1.0)], [Connection("c", ("h",))])

    def test_needs_connections(self):
        with pytest.raises(TopologyError):
            Network([Gateway("g", 1.0)], [])

    def test_needs_gateways(self):
        with pytest.raises(TopologyError):
            Network([], [Connection("c", ("g",))])

    def test_connection_index(self):
        net = two_gateway_shared()
        assert net.connection_index("long") == 0
        with pytest.raises(TopologyError):
            net.connection_index("nope")

    def test_unknown_gateway_lookup(self):
        net = single_gateway(2)
        with pytest.raises(TopologyError):
            net.gateway("zzz")
        with pytest.raises(TopologyError):
            net.connections_at("zzz")

    def test_path_latency_sums(self):
        net = Network(
            [Gateway("a", 1.0, 0.5), Gateway("b", 1.0, 1.5)],
            [Connection("c", ("a", "b"))])
        assert net.path_latency(0) == pytest.approx(2.0)

    def test_local_rates_order(self):
        net = two_gateway_shared()
        rates = np.array([0.1, 0.2, 0.3])
        assert np.array_equal(net.local_rates("gb", rates), [0.1, 0.3])

    def test_utilisation(self):
        net = single_gateway(2, mu=2.0)
        assert net.utilisation("g0", np.array([0.5, 0.5])) == \
            pytest.approx(0.5)

    def test_scaled(self):
        net = single_gateway(2, mu=1.0, latency=0.7)
        scaled = net.scaled(3.0)
        assert scaled.mu("g0") == pytest.approx(3.0)
        assert scaled.gateway("g0").latency == pytest.approx(0.7)

    def test_scaled_invalid(self):
        with pytest.raises(TopologyError):
            single_gateway(2).scaled(0.0)

    def test_with_latencies(self):
        net = single_gateway(2)
        out = net.with_latencies({"g0": 4.0})
        assert out.gateway("g0").latency == 4.0

    def test_with_latencies_unknown(self):
        with pytest.raises(TopologyError):
            single_gateway(2).with_latencies({"zzz": 1.0})

    def test_repr(self):
        assert "2 connections" in repr(single_gateway(2))


class TestBuilders:
    def test_single_gateway(self):
        net = single_gateway(5, mu=2.0)
        assert net.num_connections == 5
        assert net.num_gateways == 1
        assert net.n_at("g0") == 5

    def test_single_gateway_invalid(self):
        with pytest.raises(TopologyError):
            single_gateway(0)

    def test_tandem_all_cross_everything(self):
        net = tandem(3, 4)
        assert net.num_gateways == 3
        for g in net.gateway_names:
            assert net.n_at(g) == 4

    def test_parking_lot_long_everywhere(self):
        net = parking_lot(4, cross_per_hop=2)
        assert net.num_connections == 1 + 4 * 2
        for g in net.gateway_names:
            assert 0 in net.connections_at(g)
            assert net.n_at(g) == 3

    def test_parking_lot_invalid(self):
        with pytest.raises(TopologyError):
            parking_lot(0)

    def test_random_network_deterministic(self):
        a = random_network(4, 6, seed=42)
        b = random_network(4, 6, seed=42)
        assert a.gateway_names == b.gateway_names
        assert [a.gamma(i) for i in range(6)] == \
            [b.gamma(i) for i in range(6)]

    def test_random_network_counts(self):
        net = random_network(5, 8, seed=1)
        assert net.num_gateways == 5
        assert net.num_connections == 8

    def test_random_network_paths_valid(self):
        net = random_network(6, 10, seed=3, max_path_len=3)
        for i in range(net.num_connections):
            path = net.gamma(i)
            assert 1 <= len(path) <= 3
            assert len(set(path)) == len(path)
