"""Unit tests for the batched asynchronous engine: scalar equivalence,
ring-buffer boundaries, fixed-point invariance under any schedule and
delay, and the blocked/recording contracts shared with run_ensemble."""

import numpy as np
import pytest

from repro.core.asynchronous import (AsynchronousRunner, BernoulliSchedule,
                                     BurstyClock, ClockSchedule,
                                     RateMixClock, RoundRobinSchedule,
                                     SynchronousSchedule,
                                     run_async_ensemble)
from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.math_utils import clip_nonnegative
from repro.core.ratecontrol import ProportionalTargetRule, TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import fair_steady_state
from repro.core.topology import single_gateway
from repro.errors import RateVectorError, SweepError
from repro.observability.record import validate_run_record


def _individual(n, eta=0.5, mu=1.0):
    return FlowControlSystem(single_gateway(n, mu=mu), FairShare(),
                             LinearSaturating(),
                             ProportionalTargetRule(eta=eta, beta=0.5),
                             style=FeedbackStyle.INDIVIDUAL)


def _aggregate(n, eta=0.3):
    return FlowControlSystem(single_gateway(n, mu=1.0), Fifo(),
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=0.5),
                             style=FeedbackStyle.AGGREGATE)


def _initials(n, m=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.02, 0.4 / n, size=(m, n))


SCHEDULES = [
    SynchronousSchedule(),
    RoundRobinSchedule(),
    BernoulliSchedule(0.5, seed=3),
    ClockSchedule(RateMixClock(0.25, 1.0, 0.5, seed=3)),
    ClockSchedule(BurstyClock(0.9, 0.2, 4, seed=3)),
]


class TestScalarEquivalence:
    @pytest.mark.parametrize("sched", SCHEDULES,
                             ids=lambda s: type(s).__name__)
    @pytest.mark.parametrize("tau", [0, 2])
    def test_members_reproduce_scalar_runner(self, sched, tau):
        system = _individual(4)
        initials = _initials(4)
        ens = run_async_ensemble(system, initials, schedule=sched,
                                 signal_delay=tau, max_steps=600)
        runner = AsynchronousRunner(system, sched, signal_delay=tau)
        for m in range(len(ens)):
            traj = runner.run(initials[m], max_steps=600)
            assert ens.outcomes[m] is traj.outcome
            assert int(ens.steps[m]) == traj.steps
            assert np.array_equal(ens.finals[m], traj.final)

    def test_recorded_histories_match_scalar_runner(self):
        system = _individual(3)
        initials = _initials(3, m=2)
        sched = BernoulliSchedule(0.4, seed=9)
        ens = run_async_ensemble(system, initials, schedule=sched,
                                 signal_delay=1, max_steps=300,
                                 record=True)
        runner = AsynchronousRunner(system, sched, signal_delay=1)
        for m in range(len(ens)):
            traj = runner.run(initials[m], max_steps=300)
            assert np.array_equal(ens.histories[m], traj.history)

    def test_per_member_schedules(self):
        system = _individual(3)
        initials = _initials(3, m=3)
        per_member = [SynchronousSchedule(), RoundRobinSchedule(),
                      BernoulliSchedule(0.6, seed=5)]
        ens = run_async_ensemble(system, initials, schedule=per_member,
                                 max_steps=600)
        for m, sched in enumerate(per_member):
            traj = AsynchronousRunner(system, sched).run(initials[m],
                                                         max_steps=600)
            assert ens.outcomes[m] is traj.outcome
            assert np.array_equal(ens.finals[m], traj.final)


class TestBlockedAndRecording:
    def test_blocked_equals_one_shot_bit_exactly(self):
        system = _individual(4)
        initials = _initials(4, m=5)
        sched = ClockSchedule(RateMixClock(seed=1))
        kwargs = dict(schedule=sched, signal_delay=2, max_steps=400,
                      record=True)
        blocked = run_async_ensemble(system, initials, block_size=2,
                                     **kwargs)
        oneshot = run_async_ensemble(system, initials, **kwargs)
        assert np.array_equal(blocked.finals, oneshot.finals)
        assert blocked.outcomes == oneshot.outcomes
        assert np.array_equal(blocked.steps, oneshot.steps)
        assert blocked.periods == oneshot.periods
        for m in range(len(blocked)):
            assert np.array_equal(blocked.histories[m],
                                  oneshot.histories[m])

    def test_telemetry_record_kind(self):
        system = _individual(3)
        ens = run_async_ensemble(system, _initials(3, m=2),
                                 schedule=RoundRobinSchedule(),
                                 max_steps=400, telemetry=True)
        rec = ens.telemetry
        assert rec is not None and rec.kind == "async_ensemble"
        assert validate_run_record(rec.to_dict()) == []

    def test_empty_ensemble(self):
        system = _individual(3)
        ens = run_async_ensemble(system, np.empty((0, 3)))
        assert len(ens) == 0
        assert ens.finals.shape == (0, 3)


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(RateVectorError):
            run_async_ensemble(_individual(2), _initials(2),
                               signal_delay=-1)

    def test_schedule_list_length_mismatch(self):
        with pytest.raises(SweepError, match="one schedule per member"):
            run_async_ensemble(_individual(2), _initials(2, m=3),
                               schedule=[RoundRobinSchedule()])

    def test_schedule_list_type_checked(self):
        with pytest.raises(SweepError, match="UpdateSchedule"):
            run_async_ensemble(_individual(2), _initials(2, m=2),
                               schedule=["round-robin", "sync"])

    def test_controlled_system_rejected(self):
        from repro.scenarios import (ConnectionSpec, ControllerSpec,
                                     GatewaySpec, RuleSpec, ScenarioSpec,
                                     SignalSpec)
        spec = ScenarioSpec(
            name="rcp", gateways=(GatewaySpec("g0", 1.0),),
            connections=(ConnectionSpec("c0", ("g0",)),
                         ConnectionSpec("c1", ("g0",))),
            discipline="fifo", signal=SignalSpec(), style="individual",
            rules=(RuleSpec("rcp-source"),) * 2,
            initial_rates=(0.1, 0.2), max_steps=500, seed=1,
            controller=ControllerSpec("rcp", {"alpha": 0.5,
                                              "beta": 0.05,
                                              "fill": 0.4}))
        with pytest.raises(SweepError, match="gateways"):
            run_async_ensemble(spec.build(), _initials(2))


class TestRingBufferBoundaries:
    """The (tau + 1, M, N) delayed-signal ring buffer at its edges."""

    def _hand_rolled(self, system, r0, steps, tau, sched):
        """Reference loop with an explicit list instead of a ring:
        step t reads the state from t - 1 - tau (clamped to r_0)."""
        states = [np.asarray(r0, dtype=float)]
        hist = [states[0].copy()]
        for step in range(1, steps + 1):
            stale = states[max(0, step - 1 - tau)]
            b = system.signals(stale)
            d = system.delays(stale)
            mask = sched.participants(step - 1, len(r0))
            r = states[-1].copy()
            for i in np.nonzero(mask)[0]:
                r[i] = system.rules[i].apply(float(states[-1][i]),
                                             float(b[i]), float(d[i]))
            r = clip_nonnegative(r)
            states.append(r)
            hist.append(r.copy())
        return np.stack(hist)

    def test_tau_zero_is_the_undelayed_path_bit_exactly(self):
        system = _individual(3)
        r0 = np.array([0.1, 0.2, 0.05])
        steps = 40
        expected = self._hand_rolled(system, r0, steps, 0,
                                     SynchronousSchedule())
        ens = run_async_ensemble(system, r0[np.newaxis],
                                 signal_delay=0, max_steps=steps,
                                 settle=steps + 1, record=True)
        got = ens.histories[0]
        assert np.array_equal(got[:steps + 1], expected[:got.shape[0]])

    def test_warm_up_steps_before_the_buffer_fills(self):
        # With delay tau, steps 1 .. tau + 1 all act on r_0's signals;
        # step tau + 2 is the first to see r_1.
        system = _individual(3, eta=0.4)
        r0 = np.array([0.08, 0.2, 0.12])
        tau = 3
        expected = self._hand_rolled(system, r0, tau + 3, tau,
                                     SynchronousSchedule())
        ens = run_async_ensemble(system, r0[np.newaxis],
                                 signal_delay=tau, max_steps=tau + 3,
                                 settle=tau + 4, record=True)
        assert np.array_equal(ens.histories[0], expected)
        # The warm-up really is constant-signal: recompute step 2 from
        # r_1 instead of r_0 and check it would have differed.
        b0, b1 = system.signals(r0), system.signals(expected[1])
        assert not np.array_equal(b0, b1)

    def test_tau_longer_than_the_trajectory(self):
        # The buffer never fills: every step acts on r_0's signals.
        system = _individual(3, eta=0.4)
        r0 = np.array([0.08, 0.2, 0.12])
        steps, tau = 12, 50
        expected = self._hand_rolled(system, r0, steps, tau,
                                     SynchronousSchedule())
        ens = run_async_ensemble(system, r0[np.newaxis],
                                 signal_delay=tau, max_steps=steps,
                                 record=True)
        assert ens.outcomes[0] is Outcome.UNDECIDED
        assert np.array_equal(ens.histories[0], expected)
        # And the scalar runner agrees bit-exactly.
        traj = AsynchronousRunner(system, signal_delay=tau).run(
            r0, max_steps=steps)
        assert np.array_equal(traj.history, expected)


class TestFixedPointInvariance:
    """Differential contract: a fixed point of the synchronous map is a
    fixed point of every schedule x delay combination."""

    @pytest.mark.parametrize("sched", SCHEDULES,
                             ids=lambda s: type(s).__name__)
    @pytest.mark.parametrize("tau", [0, 1, 4])
    def test_sync_fixed_point_invariant(self, sched, tau):
        system = _individual(4)
        sync = system.run(np.full(4, 0.1), max_steps=5000, tol=1e-12)
        assert sync.outcome is Outcome.CONVERGED
        ens = run_async_ensemble(system, sync.final[np.newaxis],
                                 schedule=sched, signal_delay=tau,
                                 max_steps=800, tol=1e-12)
        assert ens.outcomes[0] is Outcome.CONVERGED
        assert float(np.max(np.abs(ens.finals[0] - sync.final))) <= 1e-9

    def test_aggregate_overshoot_pinned_regression(self):
        # eta * N = 3.6 > 2: the synchronous aggregate map overshoots
        # and cannot converge, while the same map under a round-robin
        # schedule is a convergent Gauss-Seidel sweep — and both share
        # the fair fixed point.
        system = _aggregate(12, eta=0.3)
        fair = fair_steady_state(single_gateway(12), 0.5)
        rng = np.random.default_rng(0)
        start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(12)),
                        0.0, None)
        sync = run_async_ensemble(system, start[np.newaxis],
                                  schedule=SynchronousSchedule(),
                                  max_steps=4000)
        assert sync.outcomes[0] is not Outcome.CONVERGED
        seq = run_async_ensemble(system, start[np.newaxis],
                                 schedule=RoundRobinSchedule(),
                                 max_steps=60000)
        assert seq.outcomes[0] is Outcome.CONVERGED
        assert float(seq.finals[0].sum()) == pytest.approx(0.5,
                                                           abs=1e-6)
        # The shared fixed point is exactly preserved when started on.
        held = run_async_ensemble(system, fair[np.newaxis],
                                  schedule=RoundRobinSchedule(),
                                  max_steps=200)
        assert held.outcomes[0] is Outcome.CONVERGED
        assert float(np.max(np.abs(held.finals[0] - fair))) <= 1e-9
