"""Unit tests for asynchronous schedules and delayed feedback."""

import numpy as np
import pytest

from repro.core.asynchronous import (AsynchronousRunner, BernoulliSchedule,
                                     RoundRobinSchedule,
                                     SynchronousSchedule)
from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import fair_steady_state
from repro.core.topology import single_gateway
from repro.errors import RateVectorError


def _aggregate(n, eta=0.3):
    net = single_gateway(n, mu=1.0)
    return FlowControlSystem(net, Fifo(), LinearSaturating(),
                             TargetRule(eta=eta, beta=0.5),
                             style=FeedbackStyle.AGGREGATE)


class TestSchedules:
    def test_synchronous_all(self):
        mask = SynchronousSchedule().participants(3, 5)
        assert mask.all() and mask.shape == (5,)

    def test_round_robin_cycles(self):
        sched = RoundRobinSchedule()
        for step in range(10):
            mask = sched.participants(step, 4)
            assert mask.sum() == 1
            assert mask[step % 4]

    def test_round_robin_sweep(self):
        assert RoundRobinSchedule().steps_per_sweep(7) == 7

    def test_bernoulli_probability(self):
        sched = BernoulliSchedule(0.5, seed=0)
        total = sum(sched.participants(k, 100).sum() for k in range(100))
        assert total == pytest.approx(5000, rel=0.1)

    def test_bernoulli_validation(self):
        with pytest.raises(RateVectorError):
            BernoulliSchedule(0.0)
        with pytest.raises(RateVectorError):
            BernoulliSchedule(1.5)


class TestAsynchronousRunner:
    def test_synchronous_schedule_matches_system_run(self):
        system = _aggregate(3, eta=0.05)
        start = np.array([0.1, 0.2, 0.3])
        sync = system.run(start, max_steps=5000, tol=1e-10)
        async_run = AsynchronousRunner(system).run(start, max_steps=5000,
                                                   tol=1e-10)
        assert async_run.outcome is Outcome.CONVERGED
        assert np.allclose(async_run.final, sync.final, atol=1e-8)

    def test_fixed_points_shared(self):
        system = _aggregate(3, eta=0.05)
        fair = fair_steady_state(single_gateway(3), 0.5)
        runner = AsynchronousRunner(system, RoundRobinSchedule())
        assert runner.is_steady_state(fair)

    def test_round_robin_stabilises_unstable_sync_case(self):
        # eta N = 3.6 > 2: synchronous diverges, sequential converges.
        system = _aggregate(12, eta=0.3)
        fair = fair_steady_state(single_gateway(12), 0.5)
        rng = np.random.default_rng(0)
        start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(12)),
                        0.0, None)
        sync = system.run(start, max_steps=4000, tol=1e-10)
        assert sync.outcome is not Outcome.CONVERGED
        seq = AsynchronousRunner(system, RoundRobinSchedule()).run(
            start, max_steps=60000, tol=1e-10)
        assert seq.outcome is Outcome.CONVERGED
        assert float(seq.final.sum()) == pytest.approx(0.5, abs=1e-6)

    def test_delay_destabilises_marginal_gain(self):
        # eta N = 1.2 is fine without delay, unstable with one step of
        # delay (threshold 2 sin(pi/6) = 1.0).
        system = _aggregate(4, eta=0.3)
        fair = fair_steady_state(single_gateway(4), 0.5)
        rng = np.random.default_rng(1)
        start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(4)),
                        0.0, None)
        no_delay = AsynchronousRunner(system, signal_delay=0).run(
            start, max_steps=8000)
        delayed = AsynchronousRunner(system, signal_delay=1).run(
            start, max_steps=8000)
        assert no_delay.outcome is Outcome.CONVERGED
        assert delayed.outcome is not Outcome.CONVERGED

    def test_small_gain_tolerates_delay(self):
        system = _aggregate(4, eta=0.01)
        fair = fair_steady_state(single_gateway(4), 0.5)
        start = fair * 1.05
        delayed = AsynchronousRunner(system, signal_delay=8).run(
            start, max_steps=30000)
        assert delayed.outcome is Outcome.CONVERGED

    def test_delayed_spike_not_mistaken_for_convergence(self):
        # Regression: a stale congestion spike pinning rates at zero
        # for a few steps must not be declared a fixed point.
        system = _aggregate(4, eta=0.3)
        fair = fair_steady_state(single_gateway(4), 0.5)
        rng = np.random.default_rng(1)
        start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(4)),
                        0.0, None)
        traj = AsynchronousRunner(system, signal_delay=6).run(
            start, max_steps=8000)
        if traj.outcome is Outcome.CONVERGED:
            assert system.is_steady_state(traj.final, tol=1e-6)

    def test_negative_delay_rejected(self):
        with pytest.raises(RateVectorError):
            AsynchronousRunner(_aggregate(2), signal_delay=-1)

    def test_divergence_detected(self):
        class Exploder(TargetRule):
            def delta(self, rate, signal, delay):
                return rate * 10.0 + 1.0

        net = single_gateway(2, mu=1.0)
        system = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                   Exploder(),
                                   style=FeedbackStyle.INDIVIDUAL)
        traj = AsynchronousRunner(system).run(np.array([0.1, 0.1]),
                                              max_steps=200)
        assert traj.outcome is Outcome.DIVERGED


class TestBernoulliDeterminism:
    """Regression: the schedule used to advance a shared generator, so
    reusing one schedule object (or probing a mask out of band) changed
    every later mask.  Masks are now a pure function of (seed, step)."""

    def test_same_seed_same_masks(self):
        a = BernoulliSchedule(0.4, seed=9)
        b = BernoulliSchedule(0.4, seed=9)
        for step in (0, 1, 7, 1000):
            assert np.array_equal(a.participants(step, 32),
                                  b.participants(step, 32))

    def test_masks_do_not_depend_on_call_history(self):
        fresh = BernoulliSchedule(0.4, seed=9)
        probed = BernoulliSchedule(0.4, seed=9)
        for step in range(50):  # out-of-band probing
            probed.participants(step, 32)
        assert np.array_equal(fresh.participants(3, 32),
                              probed.participants(3, 32))

    def test_distinct_seeds_distinct_masks(self):
        a = BernoulliSchedule(0.4, seed=1)
        b = BernoulliSchedule(0.4, seed=2)
        assert any(
            not np.array_equal(a.participants(s, 64),
                               b.participants(s, 64))
            for s in range(8))

    def test_runner_replays_bit_identically(self):
        system = _aggregate(3, eta=0.1)
        start = np.array([0.1, 0.2, 0.3])

        def run_once():
            runner = AsynchronousRunner(
                system, BernoulliSchedule(0.5, seed=11))
            return runner.run(start, max_steps=400, tol=1e-10)

        first, second = run_once(), run_once()
        assert first.outcome is second.outcome
        assert np.array_equal(first.history, second.history)
