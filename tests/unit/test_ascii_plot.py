"""Unit tests for the ASCII chart helpers."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import histogram, line_chart, scatter_chart
from repro.errors import RateVectorError


class TestLineChart:
    def test_contains_title_and_marks(self):
        out = line_chart([1, 2, 3, 2, 1], title="hill")
        assert "hill" in out
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(RateVectorError):
            line_chart([])

    def test_axis_labels_present(self):
        out = line_chart([0.0, 10.0])
        assert "10" in out


class TestScatterChart:
    def test_basic(self):
        out = scatter_chart([0, 1, 2], [5, 6, 7])
        assert "." in out

    def test_shape_mismatch(self):
        with pytest.raises(RateVectorError):
            scatter_chart([0, 1], [1])

    def test_too_small_grid(self):
        with pytest.raises(RateVectorError):
            scatter_chart([0], [0], width=4, height=2)

    def test_nonfinite_points_skipped(self):
        out = scatter_chart([0, 1, 2], [1, float("inf"), 3])
        assert isinstance(out, str)

    def test_constant_series_ok(self):
        out = scatter_chart([0, 1], [5, 5])
        assert "5" in out

    def test_y_label(self):
        out = scatter_chart([0, 1], [0, 1], y_label="rate")
        assert "[y: rate]" in out


class TestHistogram:
    def test_counts_shown(self):
        out = histogram([1, 1, 1, 5], bins=2)
        assert "3" in out and "#" in out

    def test_empty_rejected(self):
        with pytest.raises(RateVectorError):
            histogram([float("nan")])

    def test_title(self):
        assert histogram([1, 2], title="t").startswith("t")
