"""Unit tests for the weighted Fair Share extension."""

import math

import numpy as np
import pytest

from repro.core.fairness import max_min_allocation
from repro.core.fairshare import FairShare
from repro.core.math_utils import g
from repro.core.signals import (individual_congestion,
                                weighted_individual_congestion)
from repro.core.topology import single_gateway, two_gateway_shared
from repro.core.weighted import (WeightedFairShare,
                                 weighted_max_min_allocation,
                                 weighted_reservation_floor)
from repro.errors import RateVectorError, TopologyError


class TestWeightedQueueLaw:
    def test_equal_weights_reduce_to_fair_share(self, rates4):
        wfs = WeightedFairShare(np.ones(4))
        fs = FairShare()
        assert np.allclose(wfs.queue_lengths(rates4, 1.0),
                           fs.queue_lengths(rates4, 1.0))

    def test_total_conserved(self, rates4):
        wfs = WeightedFairShare([1.0, 2.0, 0.5, 3.0])
        total = wfs.total_queue(rates4, 1.0)
        assert total == pytest.approx(g(rates4.sum()))

    def test_weight_proportional_split_at_proportional_rates(self):
        # Rates proportional to weights -> one priority class -> queues
        # split in proportion to weights.
        phi = np.array([1.0, 2.0, 3.0])
        r = 0.1 * phi
        q = WeightedFairShare(phi).queue_lengths(r, 1.0)
        assert np.allclose(q / phi, q[0] / phi[0])
        assert q.sum() == pytest.approx(g(r.sum()))

    def test_triangular_in_normalised_rates(self):
        phi = np.array([1.0, 2.0, 1.0])
        r = np.array([0.1, 0.1, 0.3])     # v = (0.1, 0.05, 0.3)
        q1 = WeightedFairShare(phi).queue_lengths(r, 1.0)
        bumped = r.copy()
        bumped[2] += 0.1                   # largest v grows
        q2 = WeightedFairShare(phi).queue_lengths(bumped, 1.0)
        assert np.allclose(q1[:2], q2[:2])

    def test_weighted_theorem5_bound(self):
        rng = np.random.default_rng(3)
        phi = np.array([1.0, 2.0, 4.0])
        big_phi = phi.sum()
        for _ in range(50):
            r = rng.uniform(0.0, 0.25, 3)
            q = WeightedFairShare(phi).queue_lengths(r, 1.0)
            denom = 1.0 - (big_phi / phi) * r
            for i in range(3):
                if denom[i] <= 0:
                    continue
                bound = r[i] / denom[i]
                assert q[i] <= bound + 1e-9

    def test_small_heavy_weight_isolated_from_overload(self):
        phi = np.array([4.0, 1.0])
        # conn 0: v = 0.025; conn 1 hogs: v = 1.2.
        q = WeightedFairShare(phi).queue_lengths([0.1, 1.2], 1.0)
        assert np.isfinite(q[0])
        assert math.isinf(q[1])

    def test_zero_rate_zero_queue(self):
        q = WeightedFairShare([1.0, 2.0]).queue_lengths([0.0, 0.3], 1.0)
        assert q[0] == 0.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            WeightedFairShare([1.0, -1.0])
        with pytest.raises(RateVectorError):
            WeightedFairShare([1.0, 2.0]).queue_lengths([0.1], 1.0)

    def test_weights_copy(self):
        wfs = WeightedFairShare([1.0, 2.0])
        w = wfs.weights
        w[0] = 99.0
        assert wfs.weights[0] == 1.0


class TestWeightedCongestion:
    def test_reduces_to_unweighted(self):
        q = np.array([0.5, 1.5, 3.0])
        assert np.allclose(
            weighted_individual_congestion(q, np.ones(3)),
            individual_congestion(q))

    def test_largest_equals_aggregate(self):
        q = np.array([0.5, 1.5, 3.0])
        phi = np.array([1.0, 1.0, 1.0])
        c = weighted_individual_congestion(q, phi)
        assert c[2] == pytest.approx(q.sum())

    def test_smallest_is_weight_scaled(self):
        # C_min = Phi * Q_min / phi_min when all others are larger
        # per-weight.
        q = np.array([0.2, 5.0, 5.0])
        phi = np.array([2.0, 1.0, 1.0])
        c = weighted_individual_congestion(q, phi)
        assert c[0] == pytest.approx(phi.sum() * q[0] / phi[0])

    def test_validation(self):
        with pytest.raises(RateVectorError):
            weighted_individual_congestion([1.0, 2.0], [1.0])
        with pytest.raises(RateVectorError):
            weighted_individual_congestion([1.0], [0.0])


class TestWeightedAllocation:
    def test_single_gateway_proportional(self):
        net = single_gateway(3, mu=1.0)
        rates = weighted_max_min_allocation(net, {"g0": 0.6},
                                            [1.0, 2.0, 3.0])
        assert np.allclose(rates, [0.1, 0.2, 0.3])

    def test_equal_weights_match_unweighted(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        caps = {"ga": 0.5, "gb": 1.0}
        weighted = weighted_max_min_allocation(net, caps, np.ones(3))
        plain = max_min_allocation(net, caps)
        assert np.allclose(weighted, plain)

    def test_multi_gateway_weighted_bottleneck(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        # long has weight 3 at ga against a_only's 1: gets 3/4 of ga.
        rates = weighted_max_min_allocation(
            net, {"ga": 0.4, "gb": 1.0}, [3.0, 1.0, 1.0])
        assert rates[0] == pytest.approx(0.3)
        assert rates[1] == pytest.approx(0.1)
        assert rates[2] == pytest.approx(0.7)

    def test_capacity_respected(self):
        net = two_gateway_shared()
        caps = {"ga": 0.5, "gb": 0.8}
        rates = weighted_max_min_allocation(net, caps, [1.0, 5.0, 2.0])
        for gname in net.gateway_names:
            used = sum(rates[i] for i in net.connections_at(gname))
            assert used <= caps[gname] + 1e-9

    def test_missing_capacity(self):
        with pytest.raises(TopologyError):
            weighted_max_min_allocation(single_gateway(2), {}, [1.0, 1.0])

    def test_bad_weights(self):
        with pytest.raises(RateVectorError):
            weighted_max_min_allocation(single_gateway(2), {"g0": 1.0},
                                        [1.0])


class TestWeightedFloor:
    def test_single_gateway(self):
        net = single_gateway(2, mu=1.0)
        floor = weighted_reservation_floor(net, 0.5, [1.0, 3.0])
        assert floor[0] == pytest.approx(0.5 * 0.25)
        assert floor[1] == pytest.approx(0.5 * 0.75)

    def test_equal_weights_match_unweighted(self):
        from repro.core.robustness import reservation_floor
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        assert np.allclose(
            weighted_reservation_floor(net, 0.5, np.ones(3)),
            reservation_floor(net, 0.5))

    def test_invalid_rho(self):
        with pytest.raises(RateVectorError):
            weighted_reservation_floor(single_gateway(2), 1.2, [1.0, 1.0])
