"""Unit tests for blocked ensemble execution and history policies.

Blocked execution is an out-of-core strategy, not a semantic change:
``run_ensemble(block_size=k)`` must be bit-identical to the one-shot
run for every ``k`` — finals, outcomes, steps, periods, mask events,
fault events, and retained histories.  The history policies trade
memory for retention (``full`` > ``tail`` > ``none``) without touching
the finals, and the retention buffers are views, never hidden copies.
"""

import warnings

import numpy as np
import pytest

from repro.core.dynamics import (HISTORY_POLICIES, FlowControlSystem,
                                 Outcome, ensemble_buffer_bytes)
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.errors import RateVectorError, SweepError
from repro.faults import FaultPlan
from repro.faults.injectors import SignalLoss
from repro.observability import collect


@pytest.fixture(scope="module")
def system():
    return FlowControlSystem(single_gateway(4, mu=1.0), FairShare(),
                             LinearSaturating(),
                             TargetRule(eta=0.1, beta=0.5),
                             style=FeedbackStyle.INDIVIDUAL)


@pytest.fixture(scope="module")
def starts():
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, 0.6, size=(7, 4))


def _same(a, b):
    assert np.array_equal(a.finals, b.finals)
    assert a.outcomes == b.outcomes
    assert np.array_equal(a.steps, b.steps)
    assert a.periods == b.periods


class TestBlockedBitIdentity:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 5, 7])
    def test_blocked_equals_one_shot(self, system, starts, block_size):
        # 7 members: block sizes that divide M, straddle it, and the
        # degenerate 1-member block all reproduce the one-shot run.
        one_shot = system.run_ensemble(starts, max_steps=800)
        blocked = system.run_ensemble(starts, max_steps=800,
                                      block_size=block_size)
        _same(blocked, one_shot)
        assert blocked.block_size == block_size
        assert one_shot.block_size is None

    def test_blocked_equals_one_shot_under_faults(self, system, starts):
        plan = FaultPlan(seed=5, injectors=(SignalLoss(rate=0.2),))
        one_shot = system.run_ensemble(starts, max_steps=300,
                                       faults=plan)
        blocked = system.run_ensemble(starts, max_steps=300,
                                      faults=plan, block_size=2)
        _same(blocked, one_shot)
        assert blocked.fault_events == one_shot.fault_events

    def test_blocked_members_match_scalar_runs(self, system, starts):
        blocked = system.run_ensemble(starts, max_steps=800,
                                      block_size=3)
        for m in range(len(blocked)):
            traj = system.run(starts[m], max_steps=800)
            assert blocked.outcomes[m] is traj.outcome
            assert int(blocked.steps[m]) == traj.steps
            assert np.array_equal(blocked.finals[m], traj.final)

    def test_telemetry_records_match_and_carry_block_fields(
            self, system, starts):
        with collect() as session:
            system.run_ensemble(starts, max_steps=300, block_size=2)
            system.run_ensemble(starts, max_steps=300)
        blocked_rec, oneshot_rec = [r.to_dict()
                                    for r in session.run_records]
        assert blocked_rec["n_blocks"] == 4
        assert blocked_rec["block_size"] == 2
        assert oneshot_rec["n_blocks"] == 1
        assert oneshot_rec["block_size"] is None
        # Mask events merge across blocks into the one-shot order.
        assert blocked_rec["mask_events"] == oneshot_rec["mask_events"]
        assert blocked_rec["outcome_counts"] == \
            oneshot_rec["outcome_counts"]


class TestHistoryPolicies:
    def test_policy_catalogue(self):
        assert HISTORY_POLICIES == ("full", "tail", "none")

    def test_default_policy_is_tail(self, system, starts):
        result = system.run_ensemble(starts, max_steps=300)
        assert result.history_policy == "tail"
        assert result.histories is None

    def test_record_true_means_full(self, system, starts):
        via_record = system.run_ensemble(starts, max_steps=300,
                                         record=True)
        via_policy = system.run_ensemble(starts, max_steps=300,
                                         history="full")
        assert via_record.history_policy == "full"
        assert via_policy.history_policy == "full"
        _same(via_record, via_policy)
        for m in range(len(via_record)):
            assert np.array_equal(via_record.histories[m],
                                  via_policy.histories[m])

    def test_none_policy_keeps_finals_drops_retention(self, system,
                                                      starts):
        lean = system.run_ensemble(starts, max_steps=300,
                                   history="none", block_size=2)
        full = system.run_ensemble(starts, max_steps=300)
        assert np.array_equal(lean.finals, full.finals)
        assert lean.outcomes == full.outcomes
        assert np.array_equal(lean.steps, full.steps)
        assert lean.histories is None
        with pytest.raises(RateVectorError, match="record=True"):
            lean.trajectory(0)

    def test_none_policy_cannot_detect_oscillation(self, system):
        # Without the rolling tail there is nothing to search for a
        # cycle in: a member that exhausts the budget is UNDECIDED.
        start = np.full((1, 4), 0.2)
        tail = system.run_ensemble(start, max_steps=40, tol=0.0)
        lean = system.run_ensemble(start, max_steps=40, tol=0.0,
                                   history="none")
        assert np.array_equal(lean.finals, tail.finals)
        assert lean.outcomes[0] in (Outcome.UNDECIDED,)

    def test_blocked_full_histories_match_scalar(self, system, starts):
        result = system.run_ensemble(starts, max_steps=300,
                                     history="full", block_size=3)
        for m in range(len(result)):
            traj = system.run(starts[m], max_steps=300)
            assert np.array_equal(result.histories[m], traj.history)


class TestHistoryOwnership:
    def test_ensemble_histories_are_views_without_cross_aliasing(
            self, system, starts):
        result = system.run_ensemble(starts, max_steps=300, record=True)
        # Views into the block buffer (the zero-copy contract)...
        assert all(h.base is not None for h in result.histories)
        # ...but distinct members never alias: writing through one view
        # must not leak into another member's trajectory.
        before = result.histories[1].copy()
        result.histories[0][...] = -1.0
        assert np.array_equal(result.histories[1], before)

    def test_run_full_budget_returns_buffer_not_copy(self, system):
        # tol=0 burns the whole budget; the trajectory keeps the
        # preallocated buffer itself instead of duplicating ~max_steps
        # rows at the finish line.
        traj = system.run(np.full(4, 0.2), max_steps=50, tol=0.0)
        assert traj.steps == 50
        assert traj.history.shape == (51, 4)
        assert traj.history.flags.owndata

    def test_run_early_exit_trims_with_copy(self, system):
        traj = system.run(np.full(4, 0.1), max_steps=5000)
        assert traj.outcome is Outcome.CONVERGED
        assert traj.steps < 5000
        assert traj.history.shape == (traj.steps + 1, 4)
        # A copy that owns its rows — not a view pinning the full
        # 5000-row buffer in memory.
        assert traj.history.flags.owndata


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -3, True, 2.5, "4"])
    def test_bad_block_size_raises(self, system, starts, bad):
        with pytest.raises(SweepError, match="block_size"):
            system.run_ensemble(starts, max_steps=10, block_size=bad)

    def test_oversized_block_warns_and_matches(self, system, starts):
        one_shot = system.run_ensemble(starts, max_steps=300)
        with pytest.warns(RuntimeWarning, match="exceeds the ensemble"):
            blocked = system.run_ensemble(starts, max_steps=300,
                                          block_size=99)
        _same(blocked, one_shot)

    def test_bad_history_policy_raises(self, system, starts):
        with pytest.raises(SweepError, match="history must be one of"):
            system.run_ensemble(starts, max_steps=10, history="most")

    def test_record_conflicts_with_partial_history(self, system, starts):
        with pytest.raises(SweepError, match="record=True"):
            system.run_ensemble(starts, max_steps=10, record=True,
                                history="none")

    def test_empty_ensemble_accepts_policies(self, system):
        empty = system.run_ensemble(np.empty((0, 4)), max_steps=10,
                                    history="none", block_size=4)
        assert len(empty) == 0
        assert empty.history_policy == "none"


class TestBufferProjection:
    def test_policy_ordering(self):
        full = ensemble_buffer_bytes(64, 1000, max_steps=500,
                                     history="full")
        tail = ensemble_buffer_bytes(64, 1000, max_steps=500,
                                     history="tail")
        none = ensemble_buffer_bytes(64, 1000, max_steps=500,
                                     history="none")
        assert full > tail > none > 0

    def test_tail_formula(self):
        # base (finals + initials) + M * tail_cap * N doubles.
        m, n, cap = 8, 100, min(4 * 64, 501)
        expected = 2 * m * n * 8 + m * cap * n * 8
        assert ensemble_buffer_bytes(m, n, max_steps=500,
                                     history="tail") == expected

    def test_bad_policy_raises(self):
        with pytest.raises(SweepError, match="history"):
            ensemble_buffer_bytes(8, 100, history="everything")
