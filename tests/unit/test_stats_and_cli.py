"""Unit tests for batch-means statistics and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.fifo import Fifo
from repro.core.topology import single_gateway
from repro.errors import SimulationError
from repro.simulation.stats import (BatchMeansEstimate, batch_means,
                                    measure_queue_ci)


class TestBatchMeans:
    def test_mean_and_interval(self):
        batches = [[1.0], [2.0], [3.0], [4.0]]
        est = batch_means(batches, confidence=0.95)
        assert est.mean[0] == pytest.approx(2.5)
        assert est.half_width[0] > 0
        assert est.n_batches == 4
        assert est.lower[0] < 2.5 < est.upper[0]

    def test_contains(self):
        est = batch_means([[1.0], [2.0], [3.0]])
        assert est.contains([2.0])[0]
        assert not est.contains([99.0])[0]

    def test_vector_batches(self):
        batches = np.array([[1.0, 10.0], [2.0, 12.0], [3.0, 11.0]])
        est = batch_means(batches)
        assert est.mean.shape == (2,)
        assert est.mean[1] == pytest.approx(11.0)

    def test_1d_input_promoted(self):
        est = batch_means([1.0, 2.0, 3.0])
        assert est.mean.shape == (1,)

    def test_needs_two_batches(self):
        with pytest.raises(SimulationError):
            batch_means([[1.0]])

    def test_bad_confidence(self):
        with pytest.raises(SimulationError):
            batch_means([[1.0], [2.0]], confidence=1.5)

    def test_wider_confidence_wider_interval(self):
        batches = [[1.0], [2.0], [3.0], [2.5], [1.5]]
        e90 = batch_means(batches, confidence=0.90)
        e99 = batch_means(batches, confidence=0.99)
        assert e99.half_width[0] > e90.half_width[0]


class TestMeasureQueueCI:
    def test_covers_analytic_value(self):
        net = single_gateway(2, mu=1.0)
        rates = [0.2, 0.3]
        est = measure_queue_ci(net, rates, "fifo", n_batches=8,
                               batch_length=2500.0, warmup=500.0, seed=4)
        expected = Fifo().queue_lengths(np.array(rates), 1.0)
        assert est.contains(expected).all()

    def test_default_gateway_is_first(self):
        net = single_gateway(1, mu=1.0)
        est = measure_queue_ci(net, [0.3], n_batches=4,
                               batch_length=500.0, warmup=100.0, seed=1)
        assert est.mean.shape == (1,)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F12" in out

    def test_run_t1(self, capsys):
        assert main(["run", "T1"]) == 0
        assert "Fair Share priority decomposition" in \
            capsys.readouterr().out

    def test_run_unknown_id(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            main(["run", "F99"])

    def test_run_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "t1.csv"
        assert main(["run", "T1", "--csv", str(csv)]) == 0
        assert csv.exists()
        assert "connection" in csv.read_text()

    def test_table1_custom(self, capsys):
        assert main(["table1", "--rates", "0.1,0.2", "--mu", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "c2" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_extension_ids_addressable(self, capsys):
        # X ids resolve through the same CLI path (don't run them here
        # — just check the registry lookup).
        from repro.experiments import get
        assert get("X3").experiment_id == "X3"

    def test_run_with_json_dir(self, tmp_path, capsys):
        import json
        from repro.observability import validate_artifact
        assert main(["run", "T1", "--json-dir", str(tmp_path)]) == 0
        path = tmp_path / "T1.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert validate_artifact(data) == []
        assert data["experiment"]["id"] == "T1"
        assert "config_hash" in data["provenance"]
        timers = data["observability"]["metrics"]["timers"]
        assert "experiment.T1.seconds" in timers

    def test_json_artifact_captures_engine_records(self, tmp_path):
        import json
        # F5 runs ensembles through the engine, so its artifact must
        # carry per-iteration run records.
        assert main(["run", "F5", "--json-dir", str(tmp_path)]) in (0, 1)
        data = json.loads((tmp_path / "F5.json").read_text())
        records = data["observability"]["run_records"]
        assert records
        assert all(len(r["residuals"]) == len(r["active_members"])
                   for r in records)


class TestCliFaultsAndResume:
    def test_bad_faults_spec_raises_fault_error(self):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            main(["run", "X6", "--faults", "wormhole=1"])

    def test_faults_on_unsupporting_experiment_raises_cli_error(self):
        from repro.errors import CLIError
        with pytest.raises(CLIError) as err:
            main(["run", "F1", "--faults", "loss=0.5"])
        assert "faults" in str(err.value)

    def test_resume_on_unsupporting_experiment_raises_cli_error(
            self, tmp_path):
        from repro.errors import CLIError
        with pytest.raises(CLIError):
            main(["run", "T1", "--resume", str(tmp_path)])

    def test_console_main_converts_repro_errors(self, capsys):
        from repro.cli import console_main
        assert console_main(["run", "F99"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "F99" in err

    def test_console_main_passes_through_success(self, capsys):
        from repro.cli import console_main
        assert console_main(["list"]) == 0


class TestSelftestExitCode:
    def _run(self, *extra):
        import os
        import subprocess
        import sys
        env = dict(os.environ)
        src = str((__import__("pathlib").Path(__file__)
                   .resolve().parents[2] / "src"))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "selftest", "--quick",
             *extra],
            capture_output=True, text=True, env=env, timeout=300)

    def test_selftest_passes_with_exit_zero(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASSED" in proc.stdout

    def test_selftest_failure_propagates_nonzero_exit(self):
        proc = self._run("--force-fail")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAILED" in proc.stdout
