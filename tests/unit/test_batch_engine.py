"""Equivalence tests for the batched trajectory engine.

Every batched path — queue laws, congestion signals, rate rules, the
one-step map, and the full ensemble runner — must reproduce its scalar
counterpart row by row to 1e-12, including the awkward corners: zero
rates, overloaded gateways (infinite queues), and heterogeneous rule
mixes.
"""

import math

import numpy as np
import pytest

from repro.core.delays import round_trip_delays, round_trip_delays_batch
from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import (FairShare, cumulative_loads,
                                  cumulative_loads_batch)
from repro.core.fifo import Fifo
from repro.core.math_utils import as_rate_matrix
from repro.core.ratecontrol import (BinaryAimdRule, DecbitRateRule,
                                    DecbitWindowRule, ProportionalTargetRule,
                                    RateAdjustment, TargetRule)
from repro.core.robustness import (satisfies_theorem5_condition,
                                   theorem5_condition_batch)
from repro.core.signals import (ExponentialSignal, FeedbackStyle,
                                LinearSaturating, PowerSaturating)
from repro.core.topology import (parking_lot, single_gateway,
                                 two_gateway_shared)
from repro.errors import RateVectorError

TOL = 1e-12


class DoublingRule(RateAdjustment):
    """A custom rule with no batch override — exercises the fallback."""

    def delta(self, rate, signal, delay):
        return rate + 0.05


def _rate_batch(n, rng, m=12):
    """A batch covering interior, zero-rate, and overload rows."""
    batch = rng.uniform(0.0, 0.3, size=(m, n))
    batch[0] = 0.0                      # all idle
    batch[1, 0] = 0.0                   # one idle connection
    batch[2] = 2.0 / n                  # overloaded everywhere
    batch[3, :] = 0.0
    batch[3, -1] = 1.5                  # one connection overloads alone
    return batch


class TestAsRateMatrix:
    def test_promotes_vector_to_row(self):
        out = as_rate_matrix([0.1, 0.2])
        assert out.shape == (1, 2)

    def test_checks_width(self):
        with pytest.raises(RateVectorError):
            as_rate_matrix(np.zeros((3, 2)), n=4)

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(RateVectorError):
            as_rate_matrix([[0.1, -0.2]])
        with pytest.raises(RateVectorError):
            as_rate_matrix([[0.1, math.nan]])

    def test_returns_fresh_array(self):
        src = np.array([[0.1, 0.2]])
        out = as_rate_matrix(src)
        out[0, 0] = 9.0
        assert src[0, 0] == 0.1


class TestQueueLawBatches:
    @pytest.mark.parametrize("discipline", [Fifo(), FairShare()])
    def test_matches_scalar_rows(self, discipline):
        rng = np.random.default_rng(0)
        batch = _rate_batch(5, rng)
        q = discipline.queue_lengths_batch(batch, mu=1.0)
        for m in range(batch.shape[0]):
            expect = discipline.queue_lengths(batch[m], 1.0)
            assert np.allclose(q[m], expect, atol=TOL, equal_nan=True)
            assert np.array_equal(np.isinf(q[m]), np.isinf(expect))

    @pytest.mark.parametrize("discipline", [Fifo(), FairShare()])
    def test_delays_match_scalar_rows(self, discipline):
        rng = np.random.default_rng(1)
        batch = _rate_batch(4, rng)
        d = discipline.delays_batch(batch, mu=1.0)
        for m in range(batch.shape[0]):
            expect = discipline.delays(batch[m], 1.0)
            assert np.allclose(d[m], expect, atol=TOL, equal_nan=True)
            assert np.array_equal(np.isinf(d[m]), np.isinf(expect))

    def test_cumulative_loads_batch(self):
        rng = np.random.default_rng(2)
        batch = _rate_batch(6, rng)
        sorted_batch = np.sort(batch, axis=1)
        sigma = cumulative_loads_batch(batch, 1.0,
                                       sorted_rates=sorted_batch)
        for m in range(batch.shape[0]):
            expect = cumulative_loads(batch[m], 1.0)
            assert np.allclose(sigma[m], expect, atol=TOL)

    def test_round_trip_delays_batch(self):
        network = parking_lot(3, mu=1.0, latency=0.25)
        rng = np.random.default_rng(3)
        batch = _rate_batch(network.num_connections, rng)
        d = round_trip_delays_batch(network, FairShare(), batch)
        for m in range(batch.shape[0]):
            expect = round_trip_delays(network, FairShare(), batch[m])
            assert np.allclose(d[m], expect, atol=TOL, equal_nan=True)
            assert np.array_equal(np.isinf(d[m]), np.isinf(expect))


class TestRuleBatches:
    RULES = [TargetRule(eta=0.1, beta=0.5),
             ProportionalTargetRule(eta=0.2, beta=0.4),
             DecbitWindowRule(eta=0.05, beta=0.3),
             DecbitRateRule(eta=0.05, beta=0.3),
             BinaryAimdRule(increase=0.01, decrease=0.2, threshold=0.6),
             DoublingRule()]

    @pytest.mark.parametrize("rule", RULES,
                             ids=lambda r: type(r).__name__)
    def test_apply_batch_matches_scalar(self, rule):
        rng = np.random.default_rng(4)
        r = rng.uniform(0.0, 0.5, size=(7, 3))
        r[0] = 0.0
        b = rng.uniform(0.0, 1.0, size=(7, 3))
        b[1] = 1.0                       # saturated signal
        d = rng.uniform(0.5, 3.0, size=(7, 3))
        d[2, 0] = math.inf               # overloaded round trip
        out = rule.apply_batch(r, b, d)
        for m in range(r.shape[0]):
            for i in range(r.shape[1]):
                expect = rule.apply(float(r[m, i]), float(b[m, i]),
                                    float(d[m, i]))
                assert out[m, i] == pytest.approx(expect, abs=TOL)

    def test_fallback_writes_noncontiguous_input(self):
        rule = DoublingRule()
        wide = np.linspace(0.0, 0.5, 12).reshape(2, 6)
        view = wide[:, ::2]              # non-contiguous columns
        out = rule.apply_batch(view, np.zeros_like(view),
                               np.ones_like(view))
        for m in range(2):
            for i in range(3):
                expect = rule.apply(float(view[m, i]), 0.0, 1.0)
                assert out[m, i] == pytest.approx(expect, abs=TOL)


def _configs():
    hetero = [TargetRule(eta=0.1, beta=0.5),
              ProportionalTargetRule(eta=0.2, beta=0.4),
              DecbitRateRule(eta=0.05, beta=0.3)]
    for network in (single_gateway(3, mu=1.0),
                    two_gateway_shared(latency=0.5),
                    parking_lot(2, mu=1.2)):
        n = network.num_connections
        for discipline in (Fifo(), FairShare()):
            for style in (FeedbackStyle.AGGREGATE, FeedbackStyle.INDIVIDUAL):
                for signal in (LinearSaturating(), PowerSaturating(p=2.0),
                               ExponentialSignal(k=1.5)):
                    rules = (hetero * n)[:n]
                    yield FlowControlSystem(network, discipline, signal,
                                            rules, style=style)


class TestStepBatch:
    @pytest.mark.parametrize("system", list(_configs()),
                             ids=lambda s: "%s-%s-%s" % (
                                 type(s.discipline).__name__,
                                 s.style.name,
                                 type(s.signal_fn).__name__))
    def test_matches_scalar_step(self, system):
        rng = np.random.default_rng(5)
        n = system.network.num_connections
        batch = _rate_batch(n, rng)
        out = system.step_batch(batch)
        for m in range(batch.shape[0]):
            expect = system.step(batch[m])
            assert np.allclose(out[m], expect, atol=TOL)

    def test_signals_batch_matches_scalar(self):
        system = next(iter(_configs()))
        rng = np.random.default_rng(6)
        batch = _rate_batch(system.network.num_connections, rng)
        b = system.scheme.signals_batch(batch)
        for m in range(batch.shape[0]):
            assert np.allclose(b[m], system.signals(batch[m]), atol=TOL)

    def test_single_vector_promoted(self):
        system = next(iter(_configs()))
        r = np.array([0.1, 0.2, 0.05])
        assert np.allclose(system.step_batch(r)[0], system.step(r),
                           atol=TOL)


class TestRunEnsemble:
    def _system(self, rules=None, n=3):
        return FlowControlSystem(single_gateway(n, mu=1.0), FairShare(),
                                 LinearSaturating(),
                                 rules or TargetRule(eta=0.1, beta=0.5),
                                 style=FeedbackStyle.INDIVIDUAL)

    def test_matches_run_member_by_member(self):
        # Mix converging starts with an oscillating (high-gain) member
        # by running two systems and comparing each against run().
        for rules, kwargs in [
            (TargetRule(eta=0.1, beta=0.5), dict(max_steps=5000)),
            (TargetRule(eta=1.95, beta=0.5), dict(max_steps=600)),
        ]:
            system = self._system(rules=rules)
            rng = np.random.default_rng(7)
            starts = rng.uniform(0.0, 0.6, size=(8, 3))
            starts[0] = 0.0
            result = system.run_ensemble(starts, record=True, **kwargs)
            assert len(result) == 8
            for m in range(8):
                traj = system.run(starts[m], **kwargs)
                assert result.outcomes[m] is traj.outcome
                assert result.periods[m] == traj.period
                assert result.steps[m] == traj.steps
                assert np.allclose(result.finals[m], traj.final, atol=TOL)
                rt = result.trajectory(m)
                assert rt.history.shape == traj.history.shape
                assert np.allclose(rt.history, traj.history, atol=TOL)

    def test_divergence_masked_per_member(self):
        system = self._system(rules=DoublingRule())
        starts = np.array([[0.1, 0.1, 0.1], [0.4, 0.2, 0.3]])
        result = system.run_ensemble(starts, max_steps=300)
        for m in range(2):
            traj = system.run(starts[m], max_steps=300)
            assert traj.outcome is Outcome.DIVERGED
            assert result.outcomes[m] is Outcome.DIVERGED
            assert result.steps[m] == traj.steps
            assert np.allclose(result.finals[m], traj.final, atol=TOL)

    def test_outcome_mask_and_counts(self):
        system = self._system()
        starts = np.random.default_rng(8).uniform(0.0, 0.5, size=(5, 3))
        result = system.run_ensemble(starts, max_steps=5000)
        counts = result.outcome_counts()
        assert counts[Outcome.CONVERGED] == 5
        assert result.outcome_mask(Outcome.CONVERGED).all()

    def test_trajectory_requires_record(self):
        system = self._system()
        result = system.run_ensemble(np.full((2, 3), 0.1), max_steps=2000)
        with pytest.raises(RateVectorError):
            result.trajectory(0)

    def test_rejects_bad_batch(self):
        system = self._system()
        with pytest.raises(RateVectorError):
            system.run_ensemble(np.zeros((2, 4)))
        with pytest.raises(RateVectorError):
            system.run_ensemble(np.array([[0.1, -0.1, 0.2]]))

    def test_empty_ensemble_well_shaped(self):
        system = self._system()
        result = system.run_ensemble(np.empty((0, 3)), max_steps=500,
                                     record=True)
        assert len(result) == 0
        assert result.finals.shape == (0, 3)
        assert result.initials.shape == (0, 3)
        assert result.steps.shape == (0,)
        assert result.outcomes == []
        assert result.periods == []
        assert result.histories == []
        assert result.outcome_counts()[Outcome.CONVERGED] == 0

    def test_empty_ensemble_is_fast(self):
        # The M=0 early-out must not spin through max_steps iterations
        # over empty arrays.
        import time
        system = self._system()
        t0 = time.perf_counter()
        system.run_ensemble(np.empty((0, 3)), max_steps=200000)
        assert time.perf_counter() - t0 < 1.0

    def test_single_member_matches_run(self):
        system = self._system()
        r0 = np.array([[0.2, 0.1, 0.05]])
        result = system.run_ensemble(r0, max_steps=3000)
        traj = system.run(r0[0], max_steps=3000)
        assert len(result) == 1
        assert result.outcomes[0] is traj.outcome
        assert result.steps[0] == traj.steps
        assert np.allclose(result.finals[0], traj.final, atol=TOL)

    def test_single_connection_matches_run(self):
        system = self._system(n=1)
        starts = np.array([[0.05], [0.3], [0.9]])
        result = system.run_ensemble(starts, max_steps=3000)
        for m in range(3):
            traj = system.run(starts[m], max_steps=3000)
            assert result.outcomes[m] is traj.outcome
            assert result.steps[m] == traj.steps
            assert np.allclose(result.finals[m], traj.final, atol=TOL)

    def test_overloaded_members_agree_with_scalar(self):
        # rho_total >= 1 members have infinite queues; the batch path
        # must keep signals finite and track the scalar path to TOL.
        system = self._system()
        starts = np.array([[0.4, 0.4, 0.4],    # overloaded exactly
                           [1.0, 1.0, 1.0],    # far past saturation
                           [0.334, 0.333, 0.333],
                           [0.1, 0.1, 0.1]])
        out = system.step_batch(starts)
        assert np.all(np.isfinite(out))
        for m in range(starts.shape[0]):
            assert np.allclose(out[m], system.step(starts[m]), atol=TOL)
        result = system.run_ensemble(starts, max_steps=2000)
        for m in range(starts.shape[0]):
            traj = system.run(starts[m], max_steps=2000)
            assert result.outcomes[m] is traj.outcome
            assert np.allclose(result.finals[m], traj.final, atol=TOL)


class TestTheorem5Batch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(9)
        batch = _rate_batch(4, rng, m=30)
        for discipline in (Fifo(), FairShare()):
            verdicts = theorem5_condition_batch(discipline, batch, 1.0)
            for m in range(batch.shape[0]):
                expect = satisfies_theorem5_condition(discipline, batch[m],
                                                      1.0)
                assert bool(verdicts[m]) is expect
