"""Unit tests for steady-state prediction and the fair construction."""

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import (FixedPointCache, continuation_scan,
                                    fair_steady_state,
                                    is_aggregate_steady_state,
                                    predicted_steady_state, refine,
                                    single_connection_rate,
                                    steady_utilisation, system_key)
from repro.core.topology import (parking_lot, single_gateway,
                                 two_gateway_shared)
from repro.errors import ConvergenceError, NotTimeScaleInvariantError


class TestSteadyUtilisation:
    def test_linear_signal(self):
        assert steady_utilisation(LinearSaturating(), 0.5) == \
            pytest.approx(0.5)

    def test_higher_target_higher_load(self):
        s = LinearSaturating()
        assert steady_utilisation(s, 0.7) > steady_utilisation(s, 0.3)


class TestFairSteadyState:
    def test_single_gateway_equal_split(self):
        rates = fair_steady_state(single_gateway(4, mu=2.0), 0.5)
        assert np.allclose(rates, 0.25)

    def test_two_gateway_waterfill(self):
        # ga capacity 0.5 shared by {long, a_only}; gb capacity 1.0 by
        # {long, b_only}: long = a_only = 0.25, b_only = 0.75.
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        rates = fair_steady_state(net, 0.5)
        assert rates[net.connection_index("long")] == pytest.approx(0.25)
        assert rates[net.connection_index("a_only")] == pytest.approx(0.25)
        assert rates[net.connection_index("b_only")] == pytest.approx(0.75)

    def test_parking_lot_long_gets_equal_share(self):
        net = parking_lot(3, mu=1.0)
        rates = fair_steady_state(net, 0.5)
        # Every gateway: {long, cross}; equal split of 0.5.
        assert np.allclose(rates, 0.25)

    def test_capacity_never_exceeded(self):
        net = two_gateway_shared(mu_a=0.7, mu_b=1.3)
        rates = fair_steady_state(net, 0.4)
        for g in net.gateway_names:
            assert net.utilisation(g, rates) <= 0.4 + 1e-12

    def test_invalid_rho(self):
        with pytest.raises(ConvergenceError):
            fair_steady_state(single_gateway(2), 1.0)

    def test_single_connection_rate(self):
        assert single_connection_rate(4.0, 0.5) == 2.0


class TestPrediction:
    def test_matches_dynamics_individual(self, gateway3):
        system = FlowControlSystem(gateway3, FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=0.1, beta=0.5))
        predicted = predicted_steady_state(system)
        dynamic = system.solve(np.array([0.01, 0.2, 0.4]))
        assert np.allclose(predicted, dynamic, atol=1e-7)

    def test_heterogeneous_rejected(self, gateway3):
        system = FlowControlSystem(
            gateway3, Fifo(), LinearSaturating(),
            [TargetRule(beta=0.4), TargetRule(beta=0.5),
             TargetRule(beta=0.6)], style=FeedbackStyle.AGGREGATE)
        with pytest.raises(NotTimeScaleInvariantError):
            predicted_steady_state(system)


class TestManifoldMembership:
    def test_fair_point_is_member(self, gateway3):
        rates = fair_steady_state(gateway3, 0.5)
        assert is_aggregate_steady_state(gateway3, 0.5, rates)

    def test_unfair_split_is_member(self, gateway3):
        assert is_aggregate_steady_state(gateway3, 0.5,
                                         np.array([0.5, 0.0, 0.0]))

    def test_underloaded_not_member(self, gateway3):
        assert not is_aggregate_steady_state(gateway3, 0.5,
                                             np.array([0.1, 0.1, 0.1]))

    def test_overloaded_not_member(self, gateway3):
        assert not is_aggregate_steady_state(gateway3, 0.5,
                                             np.array([0.3, 0.3, 0.3]))

    def test_multi_gateway_each_needs_bottleneck(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        good = np.array([0.25, 0.25, 0.75])
        assert is_aggregate_steady_state(net, 0.5, good)
        # b_only not at its bottleneck:
        bad = np.array([0.25, 0.25, 0.4])
        assert not is_aggregate_steady_state(net, 0.5, bad)


class TestRefine:
    def test_polishes_approximation(self, gateway3):
        system = FlowControlSystem(gateway3, FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=0.1, beta=0.5))
        exact = predicted_steady_state(system)
        rough = exact * 1.01
        polished = refine(system, rough, tol=1e-12)
        assert np.max(np.abs(polished - exact)) < 1e-9

    def test_raises_when_not_converging(self, gateway3):
        system = FlowControlSystem(gateway3, FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=0.1, beta=0.5))
        with pytest.raises(ConvergenceError):
            refine(system, np.array([0.01, 0.01, 0.01]), max_steps=2,
                   tol=1e-14)


def _beta_system(network, beta, eta=0.1):
    return FlowControlSystem(network, FairShare(), LinearSaturating(),
                             TargetRule(eta=eta, beta=beta),
                             style=FeedbackStyle.INDIVIDUAL)


class TestSystemKey:
    def test_equal_configurations_share_a_key(self, gateway3):
        assert system_key(_beta_system(gateway3, 0.5)) == \
            system_key(_beta_system(gateway3, 0.5))

    def test_different_rule_different_key(self, gateway3):
        assert system_key(_beta_system(gateway3, 0.5)) != \
            system_key(_beta_system(gateway3, 0.6))

    def test_different_topology_different_key(self, gateway3):
        other = single_gateway(3, mu=2.0)
        assert system_key(_beta_system(gateway3, 0.5)) != \
            system_key(_beta_system(other, 0.5))

    def test_extra_folds_into_the_key(self, gateway3):
        system = _beta_system(gateway3, 0.5)
        assert system_key(system, extra=(1000, 1e-12)) != \
            system_key(system, extra=(2000, 1e-12))


class TestFixedPointCache:
    X0 = np.array([0.01, 0.2, 0.4])

    def test_matches_refine(self, gateway3):
        system = _beta_system(gateway3, 0.5)
        cache = FixedPointCache()
        result = cache.solve(system, approx=self.X0)
        assert not result.cached
        assert result.iterations > 0
        assert np.array_equal(result.rates, refine(system, self.X0))

    def test_repeat_solve_is_a_memo_hit(self, gateway3):
        cache = FixedPointCache()
        first = cache.solve(_beta_system(gateway3, 0.5), approx=self.X0)
        again = cache.solve(_beta_system(gateway3, 0.5), approx=self.X0)
        assert again.cached
        assert again.iterations == 0
        assert np.array_equal(again.rates, first.rates)
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_continuation_beats_cold_start(self, gateway3):
        betas = np.linspace(0.4, 0.6, 9)
        cold = 0
        for b in betas:
            cold += FixedPointCache().solve(
                _beta_system(gateway3, float(b)), approx=self.X0).iterations
        warm_cache = FixedPointCache()
        warm = continuation_scan(
            [_beta_system(gateway3, float(b)) for b in betas], self.X0,
            cache=warm_cache)
        assert warm_cache.iterations < cold
        # Warm starts change iteration counts, not answers.
        for b, res in zip(betas, warm):
            assert np.allclose(
                res.rates, refine(_beta_system(gateway3, float(b)),
                                  self.X0), atol=1e-8)

    def test_solver_params_are_part_of_the_key(self, gateway3):
        cache = FixedPointCache()
        cache.solve(_beta_system(gateway3, 0.5), approx=self.X0, tol=1e-8)
        second = cache.solve(_beta_system(gateway3, 0.5), approx=self.X0,
                             tol=1e-12)
        assert not second.cached
        assert cache.misses == 2

    def test_no_starting_point_raises(self, gateway3):
        with pytest.raises(ConvergenceError):
            FixedPointCache().solve(_beta_system(gateway3, 0.5))

    def test_second_pass_is_all_hits(self, gateway3):
        systems = [_beta_system(gateway3, float(b))
                   for b in np.linspace(0.4, 0.6, 5)]
        cache = FixedPointCache()
        continuation_scan(systems, self.X0, cache=cache)
        second = continuation_scan(systems, self.X0, cache=cache)
        assert all(res.cached for res in second)
        assert cache.hits == len(systems)
