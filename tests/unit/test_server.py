"""Unit tests for the gateway server: preemption, buffers, eviction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.events import Scheduler
from repro.simulation.monitors import GatewayMonitor
from repro.simulation.packet import Packet
from repro.simulation.queues import FifoQueue, FixedPriorityQueue
from repro.simulation.server import GatewayServer


class _FixedServiceRng:
    """Deterministic 'exponential' draws for exact schedule tests."""

    def __init__(self, values):
        self._values = list(values)

    def exponential(self, scale):
        return self._values.pop(0)


def _server(discipline, mu=1.0, service_times=(1.0,) * 50,
            buffer_size=None, drop_policy="tail"):
    sched = Scheduler()
    conns = [0, 1]
    monitor = GatewayMonitor(conns)
    delivered = []
    server = GatewayServer(
        name="g", mu=mu, discipline=discipline, scheduler=sched,
        service_rng=_FixedServiceRng(service_times), monitor=monitor,
        forward=delivered.append, buffer_size=buffer_size,
        drop_policy=drop_policy)
    return sched, server, monitor, delivered


def _pkt(conn, seq=0):
    return Packet(conn=conn, seq=seq, created=0.0)


class TestBasicService:
    def test_serves_in_order_and_forwards(self):
        sched, server, _, delivered = _server(FifoQueue())
        server.arrive(_pkt(0, 1))
        server.arrive(_pkt(1, 2))
        sched.run_until(2.5)
        assert [p.seq for p in delivered] == [1, 2]
        assert not server.busy

    def test_in_system_counts_serving(self):
        sched, server, _, _ = _server(FifoQueue())
        server.arrive(_pkt(0))
        assert server.in_system == 1
        server.arrive(_pkt(1))
        assert server.in_system == 2

    def test_bad_mu_rejected(self):
        with pytest.raises(SimulationError):
            _server(FifoQueue(), mu=0.0)


class TestPreemption:
    def test_high_priority_preempts_and_low_resumes(self):
        # conn 1 is high priority; service times: low=3.0, high=1.0.
        disc = FixedPriorityQueue({0: 1, 1: 0})
        sched, server, _, delivered = _server(
            disc, service_times=[3.0, 1.0])
        server.arrive(_pkt(0, seq=10))      # starts service at t=0
        sched.run_until(1.0)                # 1s of the 3s served
        server.arrive(_pkt(1, seq=20))      # preempts
        sched.run_until(2.0)                # high finishes at t=2
        assert [p.seq for p in delivered] == [20]
        sched.run_until(4.1)                # low resumes its 2s remainder
        assert [p.seq for p in delivered] == [20, 10]

    def test_preemptive_resume_exact_remainder(self):
        disc = FixedPriorityQueue({0: 1, 1: 0})
        sched, server, _, delivered = _server(
            disc, service_times=[3.0, 1.0])
        server.arrive(_pkt(0, seq=10))
        sched.run_until(1.0)
        server.arrive(_pkt(1, seq=20))
        sched.run_until(4.0)  # 2.0 (high done) + 2.0 remaining
        assert [p.seq for p in delivered] == [20, 10]

    def test_equal_priority_does_not_preempt(self):
        disc = FixedPriorityQueue({0: 0, 1: 0})
        sched, server, _, delivered = _server(
            disc, service_times=[3.0, 1.0])
        server.arrive(_pkt(0, seq=10))
        sched.run_until(1.0)
        server.arrive(_pkt(1, seq=20))
        sched.run_until(3.0)
        assert [p.seq for p in delivered] == [10]


class TestFiniteBuffer:
    def test_tail_drop_refuses_newcomer(self):
        sched, server, monitor, _ = _server(FifoQueue(), buffer_size=2)
        server.arrive(_pkt(0, 1))
        server.arrive(_pkt(0, 2))
        server.arrive(_pkt(1, 3))  # full: dropped
        assert server.in_system == 2
        assert monitor.drops[1] == 1
        assert monitor.drops[0] == 0

    def test_longest_drop_evicts_hog(self):
        sched, server, monitor, _ = _server(FifoQueue(), buffer_size=3,
                                            drop_policy="longest")
        server.arrive(_pkt(0, 1))  # serving
        server.arrive(_pkt(0, 2))
        server.arrive(_pkt(0, 3))
        server.arrive(_pkt(1, 4))  # full: conn 0's newest is evicted
        assert server.in_system == 3
        assert monitor.drops[0] == 1
        assert monitor.drops[1] == 0

    def test_longest_falls_back_to_tail_when_hog_unevictable(self):
        # Only the in-service packet occupies the gateway: nothing can
        # be evicted, so the arrival is refused instead.
        sched, server, monitor, _ = _server(FifoQueue(), buffer_size=1,
                                            drop_policy="longest")
        server.arrive(_pkt(0, 1))  # in service, buffer now full
        server.arrive(_pkt(1, 2))
        assert monitor.drops[1] == 1
        assert server.in_system == 1

    def test_buffer_validation(self):
        with pytest.raises(SimulationError):
            _server(FifoQueue(), buffer_size=0)
        with pytest.raises(SimulationError):
            _server(FifoQueue(), buffer_size=5, drop_policy="coinflip")

    def test_offered_accounting_consistent_after_eviction(self):
        sched, server, monitor, _ = _server(FifoQueue(), buffer_size=2,
                                            drop_policy="longest")
        server.arrive(_pkt(0, 1))
        server.arrive(_pkt(0, 2))
        server.arrive(_pkt(1, 3))  # evicts conn 0's packet 2
        # Offered = 3 packets total; accounting must agree.
        offered = (monitor._arrivals + monitor._drops)
        assert int(offered.sum()) == 3
