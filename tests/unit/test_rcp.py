"""Unit tests for the router-side RCP controller and its dynamics
threading: fixed points, stability factors, scalar/batch bit-identity,
and the controlled-system guards."""

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairness import jain_index, max_min_allocation
from repro.core.fifo import Fifo
from repro.core.ratecontrol import RcpSourceRule, TargetRule
from repro.core.rcp import RcpBank, RcpController
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import parking_lot, single_gateway
from repro.errors import RateVectorError, SweepError
from repro.scenarios import FaultPlanSpec, InjectorSpec


def controlled(network, alpha=0.5, beta=0.05):
    return FlowControlSystem(
        network, Fifo(), LinearSaturating(), RcpSourceRule(),
        style=FeedbackStyle.INDIVIDUAL,
        controller=RcpController(alpha=alpha, beta=beta))


class TestRcpController:
    def test_validation(self):
        with pytest.raises(RateVectorError):
            RcpController(alpha=0.0)
        with pytest.raises(RateVectorError):
            RcpController(beta=-0.1)
        with pytest.raises(RateVectorError):
            RcpController(fill=0.0)
        with pytest.raises(RateVectorError):
            RcpController(fill=1.5)

    def test_fixed_point_solves_alpha_beta_balance(self):
        ctl = RcpController(alpha=0.5, beta=0.05)
        x = ctl.fixed_point_utilisation()
        assert 0 < x < 1
        assert ctl.alpha * (1 - x) ** 2 == pytest.approx(
            ctl.beta * x, abs=1e-12)

    def test_zero_beta_fills_the_link(self):
        assert RcpController(alpha=0.5, beta=0.0) \
            .fixed_point_utilisation() == 1.0

    def test_stability_factor(self):
        ctl = RcpController(alpha=0.5, beta=0.0)
        assert ctl.stability_factor() == pytest.approx(0.5)
        ctl = RcpController(alpha=0.5, beta=0.05)
        x = ctl.fixed_point_utilisation()
        assert ctl.stability_factor() == pytest.approx(0.5 * (1 + x))


class TestRcpEquilibrium:
    def test_single_gateway_converges_to_fair_split(self):
        network = single_gateway(4, mu=2.0)
        system = controlled(network)
        traj = system.run([0.01, 0.2, 0.4, 0.9], max_steps=2000)
        assert traj.outcome is Outcome.CONVERGED
        predicted = system.bank.predicted_allocation()
        x = system.controller.fixed_point_utilisation()
        assert np.allclose(predicted, x * 2.0 / 4)
        assert np.allclose(traj.final, predicted, rtol=1e-6)
        assert jain_index(traj.final) == pytest.approx(1.0)

    def test_parking_lot_converges_to_max_min_of_effective_capacities(
            self):
        network = parking_lot(3)
        system = controlled(network)
        traj = system.run([0.05] * network.num_connections,
                          max_steps=4000)
        assert traj.outcome is Outcome.CONVERGED
        expected = max_min_allocation(
            network, system.bank.effective_capacities())
        assert np.allclose(traj.final, expected, rtol=1e-6)

    def test_unstable_gain_does_not_converge(self):
        # s = alpha = 3 > 2 with beta = 0: the fixed point is repelling
        # (the map is conjugate to a chaotic logistic map).  fill=0.45
        # keeps the clipped first step off the exact fixed point, which
        # fill=0.5 would hit dead-on (0.45 * FACTOR_MAX != fill * mu).
        system = FlowControlSystem(
            single_gateway(2, mu=1.0), Fifo(), LinearSaturating(),
            RcpSourceRule(), style=FeedbackStyle.INDIVIDUAL,
            controller=RcpController(alpha=3.0, beta=0.0, fill=0.45))
        traj = system.run([0.1, 0.2], max_steps=1500)
        assert traj.outcome is not Outcome.CONVERGED


class TestRcpBankBatch:
    def test_update_batch_matches_scalar_bitwise(self):
        network = parking_lot(3)
        bank = RcpBank(network, RcpController(alpha=0.6, beta=0.08))
        rng = np.random.default_rng(3)
        rates = rng.uniform(0.01, 0.5,
                            size=(5, network.num_connections))
        state = bank.initial_state_batch(5)
        for _ in range(4):
            state_rows = [bank.update(rates[m], state[m])
                          for m in range(5)]
            state = bank.update_batch(rates, state)
            assert np.array_equal(state, np.stack(state_rows))
            adv_rows = [bank.advertised(state[m]) for m in range(5)]
            adv = bank.advertised_batch(state)
            assert np.array_equal(adv, np.stack(adv_rows))
            rates = adv

    def test_ensemble_matches_scalar_runs(self):
        system = controlled(single_gateway(3, mu=1.5))
        initials = np.array([[0.01, 0.1, 0.3], [0.2, 0.2, 0.2]])
        ens = system.run_ensemble(initials, max_steps=800)
        for m in range(2):
            traj = system.run(initials[m], max_steps=800)
            assert ens.outcomes[m] is traj.outcome
            assert int(ens.steps[m]) == traj.steps
            assert np.array_equal(ens.finals[m], traj.final)


class TestControlledSystemGuards:
    def test_rcp_source_rule_requires_controller(self):
        with pytest.raises(RateVectorError):
            FlowControlSystem(single_gateway(2), Fifo(),
                              LinearSaturating(), RcpSourceRule(),
                              style=FeedbackStyle.INDIVIDUAL)

    def test_controller_requires_rcp_source_rules(self):
        with pytest.raises(RateVectorError):
            FlowControlSystem(single_gateway(2), Fifo(),
                              LinearSaturating(),
                              TargetRule(eta=0.1, beta=0.5),
                              style=FeedbackStyle.INDIVIDUAL,
                              controller=RcpController())

    def test_step_raises_on_controlled_system(self):
        system = controlled(single_gateway(2))
        with pytest.raises(RateVectorError):
            system.step(np.array([0.1, 0.1]))
        with pytest.raises(RateVectorError):
            system.step_batch(np.array([[0.1, 0.1]]))

    def test_faults_and_controller_are_mutually_exclusive(self):
        system = controlled(single_gateway(2))
        plan = FaultPlanSpec(
            seed=1,
            injectors=(InjectorSpec("delay",
                                    {"delay": 1, "jitter": 0}),)).build()
        with pytest.raises(SweepError):
            system.run([0.1, 0.1], faults=plan)
        with pytest.raises(SweepError):
            system.run_ensemble(np.array([[0.1, 0.1]]), faults=plan)
