"""Unit tests for repro.backends: the resolver, the stub array
namespace, the compiled kernel tiers, and the pick_kernel boundary."""

import numpy as np
import pytest

from repro import backends
from repro.backends import _fs_python, compiled
from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare, cumulative_loads
from repro.core.math_utils import SPARSE_MIN_N, pick_kernel
from repro.core.ratecontrol import TargetRule
from repro.core.signals import (FeedbackStyle, LinearSaturating,
                                individual_congestion,
                                individual_congestion_batch)
from repro.core.topology import single_gateway
from repro.errors import CLIError, RateVectorError

needs_compiled_fs = pytest.mark.skipif(
    not compiled.fs_available(),
    reason="no compiled Fair Share tier in this environment")
needs_fifo_lib = pytest.mark.skipif(
    compiled.fifo_lib() is None,
    reason="no C compiler: FIFO event loop runs pure python")


@pytest.fixture(autouse=True)
def _pristine_activation():
    """No test leaks a process-wide backend activation."""
    backends.reset()
    yield
    backends.reset()


class TestResolver:
    def test_default_is_numpy(self):
        backend = backends.resolve()
        assert backend.name == "numpy"
        assert backend.xp is np
        assert backend.kernel_tier == "python"

    def test_name_is_normalised(self):
        assert backends.resolve("  NumPy ").name == "numpy"

    def test_unknown_name_is_loud(self):
        with pytest.raises(CLIError) as exc:
            backends.resolve("tensorflow")
        msg = str(exc.value)
        assert "tensorflow" in msg
        assert "available backends" in msg
        assert "numpy" in msg
        assert "repro[numba]" in msg

    def test_unavailable_dependency_is_loud(self):
        if backends._numba_available():
            pytest.skip("numba installed: the gap cannot be provoked")
        with pytest.raises(CLIError) as exc:
            backends.resolve("numba")
        msg = str(exc.value)
        assert "not available" in msg
        assert "repro[numba]" in msg

    def test_compiled_degrades_gracefully(self):
        backend = backends.resolve("compiled")
        assert backend.name == "compiled"
        assert backend.xp is np
        assert backend.kernel_tier in ("numba", "cext", "python")

    def test_always_available_names(self):
        names = backends.available_backends()
        for name in ("numpy", "compiled", "stub"):
            assert name in names

    def test_env_variable_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "stub")
        backends.reset()
        assert backends.active().name == "stub"

    def test_env_variable_unknown_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu9000")
        backends.reset()
        with pytest.raises(CLIError):
            backends.active()

    def test_use_and_reset(self):
        backends.use("stub")
        assert backends.active().name == "stub"
        backends.reset()
        assert backends.active().name == "numpy"

    def test_using_restores_previous(self):
        with backends.using("stub"):
            assert backends.active().name == "stub"
        assert backends.active().name == "numpy"

    def test_backend_instance_passes_through(self):
        backend = backends.resolve("stub")
        assert backends.use(backend) is backend


class TestStubSeam:
    def _system(self, backend=None):
        return FlowControlSystem(
            single_gateway(4, mu=1.0), FairShare(), LinearSaturating(),
            TargetRule(eta=0.1, beta=0.5),
            style=FeedbackStyle.INDIVIDUAL, backend=backend)

    def test_step_batch_bit_identical_and_exercised(self):
        rng = np.random.default_rng(3)
        batch = rng.uniform(0.0, 0.5, size=(5, 4))
        stub = backends.resolve("stub")
        out = self._system(backend=stub).step_batch(batch)
        want = self._system().step_batch(batch)
        assert np.array_equal(out, want)
        assert stub.xp.calls > 0
        assert "asarray" in stub.xp.attributes_used

    def test_run_ensemble_bit_identical(self):
        rng = np.random.default_rng(4)
        starts = rng.uniform(0.0, 0.5, size=(6, 4))
        stub = backends.resolve("stub")
        got = self._system(backend=stub).run_ensemble(starts,
                                                      max_steps=200)
        want = self._system().run_ensemble(starts, max_steps=200)
        assert np.array_equal(got.finals, want.finals)
        assert got.outcomes == want.outcomes
        assert stub.xp.calls > 0

    def test_system_resolves_backend_names(self):
        system = self._system(backend="stub")
        assert system.backend.name == "stub"
        with pytest.raises(CLIError):
            self._system(backend="not-a-backend")

    def test_system_defaults_to_active_backend(self):
        with backends.using("stub"):
            system = self._system()
        assert system.backend.name == "stub"


class TestPythonTwins:
    """The numba-compatible loop twins diff against the numpy
    pipeline with no optional dependency installed."""

    def test_fs_queue_twin_matches_sorted_pipeline(self):
        rng = np.random.default_rng(11)
        for m, n in ((1, 5), (3, 17), (2, 80)):
            rates = rng.uniform(0.0, 2.0 / n, size=(m, n))
            rates[0, 0] = 0.0
            want = FairShare().queue_lengths_batch(rates, mu=1.0,
                                                   method="sorted")
            out = _fs_python.fs_queue_batch(rates, 1.0,
                                            np.empty_like(rates))
            assert np.array_equal(out, want)

    def test_fs_queue_twin_overload_rows(self):
        rates = np.full((2, 70), 0.5)
        want = FairShare().queue_lengths_batch(rates, mu=1.0,
                                               method="sorted")
        out = _fs_python.fs_queue_batch(rates, 1.0,
                                        np.empty_like(rates))
        assert np.array_equal(out, want)

    def test_ind_congestion_twin_matches_sorted_pipeline(self):
        rng = np.random.default_rng(12)
        queues = rng.uniform(0.0, 5.0, size=(3, 90))
        queues[0, 7] = np.inf
        want = individual_congestion_batch(queues, method="sorted")
        out = _fs_python.ind_congestion_batch(queues,
                                              np.empty_like(queues))
        assert np.array_equal(out, want)

    def test_loads_twin_matches_sorted_pipeline(self):
        rng = np.random.default_rng(13)
        rates = np.sort(rng.uniform(0.0, 0.01, size=(2, 75)), axis=1)
        from repro.core.fairshare import cumulative_loads_batch
        want = cumulative_loads_batch(rates, mu=1.0, method="sorted")
        out = _fs_python.fs_loads_batch(rates, 1.0,
                                        np.empty_like(rates))
        assert np.array_equal(out, want)


@needs_compiled_fs
class TestCompiledFairShare:
    def test_queue_law_fuzz_bit_identity(self):
        rng = np.random.default_rng(21)
        for trial in range(60):
            m = int(rng.integers(1, 5))
            n = int(rng.integers(1, 220))
            rates = rng.uniform(0.0, 1.8 / n, size=(m, n))
            if trial % 3 == 0:    # heavy rate ties
                pool = np.array([0.0, 0.2 / n, 0.4 / n])
                rates[:, : n // 2] = rng.choice(pool,
                                                size=(m, n // 2))
            if trial % 5 == 0:    # overloaded rows
                rates[0] = 2.0 / max(n, 1)
            want = FairShare().queue_lengths_batch(rates, mu=1.0,
                                                   method="sorted")
            got = compiled.fs_queue_batch(rates, 1.0)
            assert got is not None
            assert np.array_equal(got, want), f"trial {trial}"

    def test_queue_law_signed_zero_ties(self):
        # -0.0 and +0.0 are one tie class under IEEE comparison; the
        # radix key transform must keep them so.
        row = np.array([0.3, 0.0, -0.0, 0.1, 0.0, 0.2] * 20)[None, :]
        want = FairShare().queue_lengths_batch(row, mu=1.0,
                                               method="sorted")
        got = compiled.fs_queue_batch(row, 1.0)
        assert np.array_equal(got, want)

    def test_ind_congestion_with_inf(self):
        rng = np.random.default_rng(22)
        queues = rng.uniform(0.0, 4.0, size=(3, 150))
        queues[0, 3] = np.inf
        queues[2, :] = np.inf
        want = individual_congestion_batch(queues, method="sorted")
        got = compiled.ind_congestion_batch(queues)
        assert np.array_equal(got, want)

    def test_scalar_entry_points_accept_method_compiled(self):
        rng = np.random.default_rng(23)
        rates = rng.uniform(0.0, 0.01, size=130)
        assert np.array_equal(
            FairShare().queue_lengths(rates, mu=1.0,
                                      method="compiled"),
            FairShare().queue_lengths(rates, mu=1.0, method="sorted"))
        assert np.array_equal(
            cumulative_loads(rates, mu=1.0, method="compiled"),
            cumulative_loads(rates, mu=1.0, method="sorted"))
        queues = rng.uniform(0.0, 3.0, size=130)
        assert np.array_equal(
            individual_congestion(queues, method="compiled"),
            individual_congestion(queues, method="sorted"))


class TestPickKernelBoundary:
    """The auto switch must flip at exactly SPARSE_MIN_N, with or
    without a compiled backend active, and the flip must not move
    results by even one ulp."""

    def test_boundary_names_default_backend(self):
        assert pick_kernel("auto", SPARSE_MIN_N - 1) == "dense"
        assert pick_kernel("auto", SPARSE_MIN_N) == "sorted"
        assert pick_kernel("auto", SPARSE_MIN_N + 1) == "sorted"

    @needs_compiled_fs
    def test_boundary_names_compiled_backend(self):
        with backends.using("compiled"):
            assert pick_kernel("auto", SPARSE_MIN_N - 1) == "dense"
            assert pick_kernel("auto", SPARSE_MIN_N) == "compiled"
            assert pick_kernel("auto", SPARSE_MIN_N + 1) == "compiled"

    def test_compiled_method_on_sparse_paths_degrades(self):
        assert pick_kernel("compiled", 10, large="sparse") == "sparse"

    def test_unknown_method_lists_compiled(self):
        with pytest.raises(RateVectorError) as exc:
            pick_kernel("fastest", 10)
        assert "'compiled'" in str(exc.value)

    @pytest.mark.parametrize("n", [SPARSE_MIN_N - 1, SPARSE_MIN_N,
                                   SPARSE_MIN_N + 1])
    def test_bit_identity_across_the_switch(self, n):
        # Dyadic rates (k/32n with dyadic n-scaling is exact in
        # binary64) make any kernel discrepancy a hard bit flip
        # rather than harmless noise.  The contract pinned here:
        # "auto" is bitwise the kernel it resolves to on either side
        # of the switch, and the compiled kernel is bitwise the
        # sorted pipeline at every n (dense vs sorted are different
        # formulations, equal only to float tolerance — that gap is
        # the historical behaviour, not something this PR may move).
        rng = np.random.default_rng(31)
        rates = rng.integers(0, 32, size=n) / (32.0 * n)
        dense = FairShare().queue_lengths(rates, mu=1.0,
                                          method="dense")
        auto = FairShare().queue_lengths(rates, mu=1.0, method="auto")
        srt = FairShare().queue_lengths(rates, mu=1.0,
                                        method="sorted")
        expected = dense if n < SPARSE_MIN_N else srt
        assert np.array_equal(auto, expected)
        assert np.allclose(dense, srt, rtol=1e-12, atol=1e-12)
        if compiled.fs_available():
            comp = FairShare().queue_lengths(rates, mu=1.0,
                                             method="compiled")
            assert np.array_equal(srt, comp)
            with backends.using("compiled"):
                active_auto = FairShare().queue_lengths(rates, mu=1.0,
                                                        method="auto")
            assert np.array_equal(expected, active_auto)


class TestObservability:
    def test_warmup_reports_tier(self):
        assert compiled.warmup() in ("numba", "cext", "python")

    @needs_fifo_lib
    def test_fifo_runs_are_timed(self):
        from repro.simulation.network_sim import NetworkSimulation
        timer = compiled.metrics().timer("run.fifo")
        before = timer.count
        sim = NetworkSimulation(single_gateway(3, mu=1.0),
                                discipline_kind="fifo", seed=2,
                                initial_rates=[0.2, 0.1, 0.15],
                                engine="compiled")
        sim.run_for(50.0)
        assert timer.count > before
        assert timer.total_seconds >= 0.0

    def test_snapshot_shape(self):
        snap = compiled.metrics().snapshot()
        assert set(snap) == {"counters", "timers"}
