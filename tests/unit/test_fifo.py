"""Unit tests for the FIFO queue law."""

import math

import numpy as np
import pytest

from repro.core.fifo import Fifo
from repro.core.math_utils import g
from repro.errors import RateVectorError


class TestFifoQueueLengths:
    def test_single_connection_mm1(self, fifo):
        q = fifo.queue_lengths([0.5], 1.0)
        assert q[0] == pytest.approx(1.0)  # rho/(1-rho) = 0.5/0.5

    def test_proportional_to_rate(self, fifo, rates4):
        q = fifo.queue_lengths(rates4, 1.0)
        ratios = q / rates4
        assert np.allclose(ratios, ratios[0])

    def test_total_is_g(self, fifo, rates4):
        total = fifo.total_queue(rates4, 1.0)
        assert total == pytest.approx(g(rates4.sum()))

    def test_zero_rate_zero_queue(self, fifo):
        q = fifo.queue_lengths([0.0, 0.5], 1.0)
        assert q[0] == 0.0

    def test_overload_all_infinite(self, fifo):
        q = fifo.queue_lengths([0.6, 0.6], 1.0)
        assert math.isinf(q[0]) and math.isinf(q[1])

    def test_overload_zero_rate_connection_stays_zero(self, fifo):
        q = fifo.queue_lengths([0.0, 1.2], 1.0)
        assert q[0] == 0.0
        assert math.isinf(q[1])

    def test_exact_capacity_is_overload(self, fifo):
        q = fifo.queue_lengths([0.5, 0.5], 1.0)
        assert math.isinf(q[0])

    def test_scales_with_mu(self, fifo, rates4):
        q1 = fifo.queue_lengths(rates4, 1.0)
        q2 = fifo.queue_lengths(rates4 * 7, 7.0)
        assert np.allclose(q1, q2)

    def test_bad_mu(self, fifo):
        with pytest.raises(RateVectorError):
            fifo.queue_lengths([0.1], 0.0)

    def test_name(self, fifo):
        assert fifo.name == "fifo"


class TestFifoDelays:
    def test_single_connection_sojourn(self, fifo):
        # d = 1/(mu - r) for M/M/1
        d = fifo.delays([0.5], 1.0)
        assert d[0] == pytest.approx(2.0)

    def test_all_connections_same_delay(self, fifo, rates4):
        d = fifo.delays(rates4, 1.0)
        assert np.allclose(d, d[0])

    def test_zero_rate_probe_delay(self, fifo):
        d = fifo.delays([0.0, 0.5], 1.0)
        # The probe sees the same FIFO system: sojourn 1/(mu - load).
        assert d[0] == pytest.approx(2.0, rel=1e-3)
