"""Unit tests for the sharded sweep orchestrator.

The orchestrator's contract: jobs are durable directories, shard
results aggregate to disk as they finish, and a killed job resumes
exactly where it stopped — completed shards load from disk, the
interrupted shard resumes from its own sweep checkpoint, and the final
aggregate equals the uninterrupted run.  Failures are injected by
raising from the worker function at a chosen grid item (the
deterministic stand-in for killing a shard mid-job), mirroring the
resilient-sweep tests.
"""

import json

import pytest

from repro.errors import SweepError, WorkerFunctionError
from repro.parallel import ORCHESTRATOR_SCHEMA, Orchestrator, SweepJob

GRID = list(range(12))

CALLS: list = []
FAIL_AT: set = set()


def tracked(x):
    CALLS.append(x)
    if x in FAIL_AT:
        raise ValueError(f"injected failure at {x}")
    return x * 10


@pytest.fixture(autouse=True)
def _reset_worker_state():
    CALLS.clear()
    FAIL_AT.clear()
    yield
    FAIL_AT.clear()


def job(name="j", grid=GRID, shards=4, **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("retries", 0)
    return SweepJob(name, tracked, grid, shards=shards, **kwargs)


class TestLifecycle:
    def test_submit_run_results(self, tmp_path):
        orch = Orchestrator(tmp_path)
        state = orch.submit(job())
        assert state["status"] == "queued"
        assert state["shard_sizes"] == [3, 3, 3, 3]
        results = orch.run_job("j")
        assert results == [x * 10 for x in GRID]
        assert orch.status("j")["status"] == "done"
        assert orch.status("j")["completed_shards"] == [0, 1, 2, 3]
        assert orch.results("j") == results

    def test_state_file_is_schema_stamped_json(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job())
        state = json.loads(
            (tmp_path / "jobs" / "j" / "state.json").read_text())
        assert state["schema"] == ORCHESTRATOR_SCHEMA

    def test_done_job_reruns_for_free(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job())
        first = orch.run_job("j")
        CALLS.clear()
        assert orch.run_job("j") == first
        assert CALLS == []  # served entirely from disk

    def test_run_pending_drains_in_submission_order(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job("alpha", grid=[1, 2], shards=1))
        orch.submit(job("beta", grid=[3, 4], shards=1))
        statuses = orch.run_pending()
        assert statuses == {"alpha": "done", "beta": "done"}
        assert CALLS == [1, 2, 3, 4]

    def test_shards_exceeding_grid_collapse(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job(grid=[5, 6], shards=8))
        assert orch.run_job("j") == [50, 60]

    def test_empty_grid_completes_immediately(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job(grid=[]))
        assert orch.run_job("j") == []
        assert orch.status("j")["status"] == "done"


class TestFailureAndResume:
    def test_killed_job_resumes_skipping_completed_shards(self,
                                                          tmp_path):
        # Uninterrupted reference aggregate first, in its own root.
        ref = Orchestrator(tmp_path / "ref")
        ref.submit(job())
        expected = ref.run_job("j")

        # First pass: the worker dies at grid item 7 (inside shard 2),
        # after shards 0 and 1 already aggregated to disk.
        FAIL_AT.add(7)
        orch = Orchestrator(tmp_path / "real")
        orch.submit(job())
        with pytest.raises(WorkerFunctionError):
            orch.run_job("j")
        state = orch.status("j")
        assert state["status"] == "failed"
        assert state["completed_shards"] == [0, 1]
        assert "injected failure" in state["error"]

        # Second pass: a fresh orchestrator (process restart) with the
        # fault cleared.  Completed shards must come from disk, not be
        # recomputed — only shard 2 onwards touches the worker.
        FAIL_AT.clear()
        CALLS.clear()
        resumed = Orchestrator(tmp_path / "real")
        assert resumed.submit(job())["status"] == "queued"
        assert resumed.run_job("j") == expected
        assert all(x >= 6 for x in CALLS), \
            f"completed shards were recomputed: {CALLS}"

    def test_interrupted_shard_resumes_from_sweep_checkpoint(self,
                                                             tmp_path):
        # chunk_size=1 checkpoints every grid item inside the shard, so
        # resuming the killed shard re-runs only the item that failed
        # and later ones — not the shard's earlier items.
        FAIL_AT.add(7)
        orch = Orchestrator(tmp_path)
        orch.submit(job(shards=2, chunk_size=1))  # shards of 6
        with pytest.raises(WorkerFunctionError):
            orch.run_job("j")
        FAIL_AT.clear()
        CALLS.clear()
        resumed = Orchestrator(tmp_path)
        resumed.submit(job(shards=2, chunk_size=1))
        assert resumed.run_job("j") == [x * 10 for x in GRID]
        assert 6 not in CALLS, "checkpointed chunk was recomputed"
        assert 7 in CALLS

    def test_run_pending_records_failure_and_continues(self, tmp_path):
        FAIL_AT.add(1)
        orch = Orchestrator(tmp_path)
        orch.submit(job("bad", grid=[0, 1], shards=1))
        orch.submit(job("good", grid=[2, 3], shards=1))
        statuses = orch.run_pending()
        assert statuses == {"bad": "failed", "good": "done"}
        assert orch.results("good") == [20, 30]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"name": ""}, {"name": "a/b"}, {"name": ".."},
        {"shards": 0}, {"shards": True}, {"shards": 2.0},
    ])
    def test_bad_job_fields_raise(self, kwargs):
        base = dict(name="ok", fn=tracked, grid=GRID)
        base.update(kwargs)
        with pytest.raises(SweepError):
            SweepJob(**base)

    def test_non_callable_fn_raises(self):
        with pytest.raises(SweepError, match="callable"):
            SweepJob("j", 42, GRID)

    def test_submit_rejects_non_job(self, tmp_path):
        with pytest.raises(SweepError, match="SweepJob"):
            Orchestrator(tmp_path).submit("not a job")

    def test_resubmit_with_different_grid_shape_raises(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job())
        with pytest.raises(SweepError, match="pins"):
            orch.submit(job(grid=GRID[:-1]))

    def test_unknown_job_raises(self, tmp_path):
        orch = Orchestrator(tmp_path)
        with pytest.raises(SweepError, match="no job named"):
            orch.status("ghost")
        with pytest.raises(SweepError, match="not registered"):
            orch.run_job("ghost")

    def test_results_before_done_raise(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(job())
        with pytest.raises(SweepError, match="not done"):
            orch.results("j")
