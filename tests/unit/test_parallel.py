"""Unit tests for the deterministic parallel sweep runner."""

import numpy as np
import pytest

from repro.observability import collect
from repro.parallel import chunk_indices, memoised, sweep
from repro.errors import RateVectorError, SweepError


def _square(x):
    return x * x


def _vector_point(x):
    return np.array([x, 2.0 * x])


class TestChunkIndices:
    def test_partitions_exactly(self):
        for n_items in (0, 1, 5, 16, 17, 100):
            for n_chunks in (1, 2, 3, 7, 32):
                chunks = chunk_indices(n_items, n_chunks)
                flat = [i for r in chunks for i in r]
                assert flat == list(range(n_items))
                if chunks:
                    sizes = [len(r) for r in chunks]
                    assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        assert chunk_indices(10, 3) == chunk_indices(10, 3)

    def test_validation(self):
        with pytest.raises(SweepError):
            chunk_indices(-1, 2)
        with pytest.raises(SweepError):
            chunk_indices(5, 0)

    def test_more_chunks_than_items_clamps(self):
        chunks = chunk_indices(3, 10)
        assert len(chunks) <= 3
        assert [i for r in chunks for i in r] == [0, 1, 2]


class TestMemoised:
    def test_repeated_points_hit_the_cache(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        memo = memoised(fn)
        grid = [2.0, 3.0, 2.0, 2.0, 3.0]
        out = [memo(x) for x in grid]
        assert out == [4.0, 9.0, 4.0, 4.0, 9.0]
        assert calls == [2.0, 3.0]
        assert memo.misses == 2
        assert memo.hits == 3

    def test_matches_unmemoised_results_under_sweep(self):
        memo = memoised(_square)
        grid = [1, 2, 1, 3, 2, 1]
        assert sweep(memo, grid, workers=2, executor="thread") == \
            [_square(x) for x in grid]

    def test_array_arguments_are_keyed_by_value(self):
        memo = memoised(lambda v: float(np.sum(v)))
        assert memo(np.array([1.0, 2.0])) == 3.0
        assert memo(np.array([1.0, 2.0])) == 3.0
        assert memo.hits == 1

    def test_unpicklable_argument_falls_through_uncached(self):
        memo = memoised(lambda g: next(g))
        out = memo(x for x in [7])  # generators do not pickle
        assert out == 7
        assert memo.hits == 0 and memo.misses == 0


class TestSweep:
    GRID = list(range(23))

    def test_serial_matches_comprehension(self):
        assert sweep(_square, self.GRID, workers=1) == \
            [_square(x) for x in self.GRID]

    def test_thread_pool_preserves_order(self):
        out = sweep(_square, self.GRID, workers=4, executor="thread")
        assert out == [_square(x) for x in self.GRID]

    def test_process_pool_preserves_order(self):
        out = sweep(_square, self.GRID, workers=2, executor="process")
        assert out == [_square(x) for x in self.GRID]

    def test_chunk_size_respected(self):
        out = sweep(_square, self.GRID, workers=3, executor="thread",
                    chunk_size=2)
        assert out == [_square(x) for x in self.GRID]

    def test_array_results_come_back_intact(self):
        out = sweep(_vector_point, [0.5, 1.5], workers=2,
                    executor="thread")
        assert np.allclose(out[1], [1.5, 3.0])

    def test_empty_and_singleton_grids(self):
        assert sweep(_square, [], workers=4) == []
        assert sweep(_square, [3], workers=4) == [9]

    def test_unpicklable_work_falls_back_to_serial(self):
        with pytest.warns(RuntimeWarning):
            out = sweep(lambda x: x + 1, self.GRID, workers=2,
                        executor="process")
        assert out == [x + 1 for x in self.GRID]

    def test_fallback_warns_exactly_once_and_results_identical(self):
        fn = lambda x: x * 3  # noqa: E731 — unpicklable on purpose
        with pytest.warns(RuntimeWarning) as caught:
            out = sweep(fn, self.GRID, workers=2, executor="process")
        fallback_warnings = [w for w in caught
                             if issubclass(w.category, RuntimeWarning)]
        assert len(fallback_warnings) == 1
        assert "fell back to serial" in str(fallback_warnings[0].message)
        assert out == sweep(fn, self.GRID, workers=1)

    def test_fallback_reason_recorded(self):
        with collect() as session:
            with pytest.warns(RuntimeWarning):
                sweep(lambda x: x, self.GRID, workers=2,
                      executor="process")
        rec = session.sweep_records[0]
        assert rec.serial
        assert rec.fallback_reason is not None
        assert rec.executor == "process"
        assert rec.chunk_sizes == [len(self.GRID)]

    def test_validation(self):
        with pytest.raises(RateVectorError):
            sweep(_square, self.GRID, executor="greenlet")
        with pytest.raises(RateVectorError):
            sweep(_square, self.GRID, workers=-1)
        with pytest.raises(RateVectorError):
            sweep(_square, self.GRID, workers=2, chunk_size=0)
