"""Unit tests for the heterogeneous clock models, their schedule
adapter, the clock-skew fault injector, and the ClockSpec grammar."""

import dataclasses

import numpy as np
import pytest

from repro.core.asynchronous import (CLOCK_KINDS, BurstyClock,
                                     ClockSchedule, DriftingClock,
                                     RateMixClock, SynchronousSchedule,
                                     UniformClock, clock_model)
from repro.errors import FaultError, RateVectorError, ScenarioError
from repro.faults import ClockSkew, FaultPlan, parse_fault_spec
from repro.scenarios import (ClockSpec, ConnectionSpec, ControllerSpec,
                             GatewaySpec, RuleSpec, ScenarioSpec,
                             SignalSpec, generate)

ALL_MODELS = [
    UniformClock(rate=0.6, seed=3),
    RateMixClock(slow_rate=0.2, fast_rate=0.9, slow_fraction=0.5, seed=3),
    DriftingClock(base_rate=0.5, amplitude=0.3, period=32, seed=3),
    BurstyClock(on_rate=0.9, off_rate=0.15, burst_len=8, seed=3),
]


class TestClockModels:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.kind)
    def test_tick_rates_stay_in_unit_interval(self, model):
        for step in (0, 1, 17, 1000):
            rates = model.tick_rates(step, 6)
            assert rates.shape == (6,)
            assert np.all(rates > 0.0) and np.all(rates <= 1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.kind)
    def test_two_instances_agree(self, model):
        clone = clock_model(model.kind, **{
            k: v for k, v in vars(model).items()
            if not k.startswith("_")})
        for step in (0, 5, 99):
            assert np.array_equal(model.tick_rates(step, 8),
                                  clone.tick_rates(step, 8))

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.kind)
    def test_source_clocks_independent_of_population_size(self, model):
        # default_rng([seed, i]) per source: adding sources must never
        # reshuffle an existing source's clock.
        small = model.tick_rates(7, 3)
        large = model.tick_rates(7, 9)
        assert np.array_equal(small, large[:3])

    def test_mix_assigns_both_rates(self):
        clock = RateMixClock(slow_rate=0.2, fast_rate=0.9,
                             slow_fraction=0.5, seed=0)
        rates = clock.tick_rates(0, 64)
        assert set(np.unique(rates)) == {0.2, 0.9}
        # The assignment is static: every step sees the same split.
        assert np.array_equal(rates, clock.tick_rates(123, 64))

    def test_drifting_oscillates_per_source(self):
        clock = DriftingClock(base_rate=0.5, amplitude=0.4, period=16,
                              seed=1)
        series = np.stack([clock.tick_rates(s, 4) for s in range(16)])
        assert np.all(series.max(axis=0) > 0.5)
        assert np.all(series.min(axis=0) < 0.5)
        assert np.all(series > 0.0) and np.all(series <= 1.0)

    def test_bursty_alternates_phases(self):
        clock = BurstyClock(on_rate=1.0, off_rate=0.1, burst_len=4,
                            seed=2)
        series = np.stack([clock.tick_rates(s, 6) for s in range(16)])
        for i in range(6):
            assert set(np.unique(series[:, i])) == {0.1, 1.0}

    def test_heterogeneity_ratios(self):
        assert UniformClock(rate=0.4).heterogeneity == 1.0
        assert RateMixClock(0.25, 1.0).heterogeneity == pytest.approx(4.0)
        assert BurstyClock(1.0, 0.1).heterogeneity == pytest.approx(10.0)
        assert DriftingClock(0.5, 0.25).heterogeneity == pytest.approx(3.0)
        assert DriftingClock(0.5, 0.0).heterogeneity == 1.0

    def test_fairness_index_uniform_is_one(self):
        assert UniformClock(rate=0.3).fairness_index(8) == 1.0

    def test_fairness_index_drops_with_heterogeneity(self):
        mild = RateMixClock(0.8, 1.0, 0.5, seed=0)
        harsh = RateMixClock(0.05, 1.0, 0.5, seed=0)
        assert harsh.fairness_index(64) < mild.fairness_index(64) < 1.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            UniformClock(rate=0.0)
        with pytest.raises(RateVectorError):
            UniformClock(rate=1.5)
        with pytest.raises(RateVectorError):
            RateMixClock(slow_rate=0.9, fast_rate=0.5)
        with pytest.raises(RateVectorError):
            RateMixClock(slow_fraction=1.5)
        with pytest.raises(RateVectorError):
            DriftingClock(base_rate=0.5, amplitude=0.5)
        with pytest.raises(RateVectorError):
            DriftingClock(base_rate=0.9, amplitude=0.2)
        with pytest.raises(RateVectorError):
            DriftingClock(period=0)
        with pytest.raises(RateVectorError):
            BurstyClock(on_rate=0.2, off_rate=0.5)
        with pytest.raises(RateVectorError):
            BurstyClock(burst_len=0)

    def test_factory_kinds(self):
        assert set(CLOCK_KINDS) == {"uniform", "mix", "drifting",
                                    "bursty"}
        for kind in CLOCK_KINDS:
            assert clock_model(kind).kind == kind
        with pytest.raises(RateVectorError, match="unknown clock kind"):
            clock_model("sundial")


class TestClockSchedule:
    def test_full_rate_clock_is_synchronous(self):
        sched = ClockSchedule(UniformClock(rate=1.0))
        sync = SynchronousSchedule()
        for step in range(10):
            assert np.array_equal(sched.participants(step, 5),
                                  sync.participants(step, 5))
        assert sched.steps_per_sweep(5) == 1

    def test_masks_are_pure_functions_of_step(self):
        a = ClockSchedule(RateMixClock(seed=7))
        b = ClockSchedule(RateMixClock(seed=7))
        for step in range(30):  # out-of-band probing on b only
            b.participants(step, 16)
        for step in (0, 3, 29, 500):
            assert np.array_equal(a.participants(step, 16),
                                  b.participants(step, 16))

    def test_steps_per_sweep_inverts_mean_rate(self):
        sched = ClockSchedule(UniformClock(rate=0.25))
        assert sched.steps_per_sweep(4) == 4
        mix = ClockSchedule(RateMixClock(0.2, 1.0, 0.5, seed=0))
        mean = float(np.mean(mix.clock.nominal_rates(64)))
        assert mix.steps_per_sweep(64) == max(1, int(round(1.0 / mean)))

    def test_rejects_non_clock(self):
        with pytest.raises(RateVectorError):
            ClockSchedule(0.5)


class TestClockSkewInjector:
    def test_validation(self):
        with pytest.raises(FaultError):
            ClockSkew(min_lag=-1, max_lag=2)
        with pytest.raises(FaultError):
            ClockSkew(min_lag=3, max_lag=2)
        with pytest.raises(FaultError, match="injects nothing"):
            ClockSkew(min_lag=0, max_lag=0)

    def test_parse_fault_spec(self):
        plan = parse_fault_spec("skew=3,seed=9")
        assert plan.seed == 9
        assert plan.injectors == (ClockSkew(min_lag=0, max_lag=3),)
        plan = parse_fault_spec("skew=4:2")
        assert plan.injectors == (ClockSkew(min_lag=2, max_lag=4),)
        with pytest.raises(FaultError, match="skew"):
            parse_fault_spec("skew=1:2:3")

    def test_lags_constant_per_source(self):
        plan = FaultPlan((ClockSkew(min_lag=1, max_lag=4),), seed=5)
        state = plan.start(n_connections=4)
        rng = np.random.default_rng(0)
        for step in range(20):
            state.apply(step, rng.random(4))
        per_conn = {}
        for ev in state.events:
            if ev.step >= 5:  # past the history warm-up
                per_conn.setdefault(ev.connection, set()).add(ev.detail)
        assert per_conn, "skew with min_lag >= 1 must record events"
        for lags in per_conn.values():
            assert len(lags) == 1

    def test_delivers_the_lagged_signal(self):
        plan = FaultPlan((ClockSkew(min_lag=2, max_lag=2),), seed=0)
        state = plan.start(n_connections=2)
        signals = [np.array([0.1 * s, 0.5 + 0.01 * s])
                   for s in range(6)]
        outs = [state.apply(s, signals[s]) for s in range(6)]
        # From step 2 on the full lag is available: observed = true
        # signal from two steps earlier.
        for s in range(2, 6):
            assert np.array_equal(outs[s], signals[s - 2])
        # Warm-up clamps to the oldest retained signal.
        assert np.array_equal(outs[0], signals[0])
        assert np.array_equal(outs[1], signals[0])

    def test_replays_bit_identically(self):
        plan = FaultPlan((ClockSkew(min_lag=0, max_lag=3),), seed=11)

        def run_once():
            state = plan.start(n_connections=3)
            rng = np.random.default_rng(1)
            outs = [state.apply(s, rng.random(3)) for s in range(15)]
            return np.stack(outs), list(state.events)

        first, second = run_once(), run_once()
        assert np.array_equal(first[0], second[0])
        assert first[1] == second[1]


class TestClockSpec:
    def spec_of(self, clock=None, controller=None, rules=None):
        n = 3
        rules = rules or (RuleSpec("proportional-target",
                                   {"eta": 0.5, "beta": 0.5}),) * n
        return ScenarioSpec(
            name="clocked",
            gateways=(GatewaySpec("g0", 1.0),),
            connections=tuple(ConnectionSpec(f"c{i}", ("g0",))
                              for i in range(n)),
            discipline="fair-share",
            signal=SignalSpec(),
            style="individual",
            rules=rules,
            initial_rates=(0.1, 0.15, 0.2),
            max_steps=1000,
            seed=5,
            controller=controller,
            clock=clock,
        )

    def test_round_trip(self):
        clock = ClockSpec("bursty", {"on_rate": 0.9, "off_rate": 0.2,
                                     "burst_len": 8, "seed": 3},
                          signal_delay=2)
        spec = self.spec_of(clock=clock)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.clock.signal_delay == 2

    def test_clockless_dicts_stay_loadable(self):
        # Backward compatibility: archived specs predate the clock key.
        data = self.spec_of().to_dict()
        del data["clock"]
        assert ScenarioSpec.from_dict(data).clock is None

    def test_build_and_schedule(self):
        clock = ClockSpec("mix", {"slow_rate": 0.25, "seed": 1})
        model = clock.build()
        assert model.kind == "mix" and model.slow_rate == 0.25
        sched = clock.schedule()
        assert isinstance(sched, ClockSchedule)
        assert sched.participants(0, 4).shape == (4,)

    def test_validation(self):
        with pytest.raises(ScenarioError, match="clock kind"):
            ClockSpec("sundial")
        with pytest.raises(ScenarioError):
            ClockSpec("uniform", {"bogus": 1.0})
        with pytest.raises(ScenarioError, match="signal_delay"):
            ClockSpec("uniform", signal_delay=-1)
        with pytest.raises(ScenarioError, match="signal_delay"):
            ClockSpec("uniform", signal_delay=True)
        # A kind-valid but value-invalid param surfaces as ScenarioError
        # at build time.
        with pytest.raises(ScenarioError):
            ClockSpec("uniform", {"rate": 2.0}).build()

    def test_controller_excludes_clock(self):
        with pytest.raises(ScenarioError, match="clock"):
            self.spec_of(
                clock=ClockSpec("uniform"),
                controller=ControllerSpec("rcp", {"alpha": 0.5,
                                                  "beta": 0.05,
                                                  "fill": 0.4}),
                rules=(RuleSpec("rcp-source"),) * 3)

    def test_generator_draws_clocks(self):
        specs = generate(42, 80)
        clocked = [s for s in specs if s.clock is not None]
        assert clocked, "the generator must draw some clocked scenarios"
        for s in clocked:
            assert s.controller is None
            assert s.clock.kind in CLOCK_KINDS
            assert 0 <= s.clock.signal_delay <= 2
            s.clock.build()  # every drawn clock is constructible
        assert generate(42, 80) == specs
