"""Unit tests for the robustness criterion (Theorem 5)."""

import math

import numpy as np
import pytest

from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.math_utils import g
from repro.core.robustness import (is_robust_outcome, reservation_delay,
                                   reservation_floor,
                                   reservation_floor_heterogeneous,
                                   satisfies_theorem5_condition,
                                   theorem5_bound, worst_floor_ratio)
from repro.core.topology import single_gateway, two_gateway_shared
from repro.errors import RateVectorError


class TestReservationFloor:
    def test_single_gateway(self):
        floor = reservation_floor(single_gateway(4, mu=2.0), 0.5)
        assert np.allclose(floor, 0.25)  # 0.5 * 2.0 / 4

    def test_path_minimum(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=4.0)
        floor = reservation_floor(net, 0.5)
        # long: min(0.5*1/2, 0.5*4/2) = 0.25
        assert floor[net.connection_index("long")] == pytest.approx(0.25)
        assert floor[net.connection_index("b_only")] == pytest.approx(1.0)

    def test_invalid_rho(self):
        with pytest.raises(RateVectorError):
            reservation_floor(single_gateway(2), 1.5)

    def test_heterogeneous_uses_own_rho(self):
        net = single_gateway(2, mu=1.0)
        floor = reservation_floor_heterogeneous(net, [0.6, 0.4])
        assert floor[0] == pytest.approx(0.3)
        assert floor[1] == pytest.approx(0.2)

    def test_heterogeneous_shape_check(self):
        with pytest.raises(RateVectorError):
            reservation_floor_heterogeneous(single_gateway(2), [0.5])


class TestTheorem5Bound:
    def test_formula(self):
        bound = theorem5_bound([0.1, 0.2], 1.0)
        assert bound[0] == pytest.approx(0.1 / (1.0 - 0.2))
        assert bound[1] == pytest.approx(0.2 / (1.0 - 0.4))

    def test_vacuous_beyond_equal_share(self):
        bound = theorem5_bound([0.6, 0.1], 1.0)
        assert math.isinf(bound[0])  # 2 * 0.6 >= 1

    def test_fair_share_satisfies(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            r = rng.uniform(0, 0.3, 4)
            assert satisfies_theorem5_condition(FairShare(), r, 1.0)

    def test_fair_share_smallest_meets_with_equality(self):
        # For the smallest connection FS gives exactly r/(mu - N r).
        r = np.array([0.05, 0.2, 0.3])
        q = FairShare().queue_lengths(r, 1.0)
        assert q[0] == pytest.approx(0.05 / (1.0 - 3 * 0.05))

    def test_fifo_violates_when_others_are_greedy(self):
        # Small connection among big ones: FIFO queue exceeds the bound.
        r = np.array([0.05, 0.4, 0.4])
        assert not satisfies_theorem5_condition(Fifo(), r, 1.0)

    def test_fifo_satisfies_at_symmetric_point(self):
        r = np.full(4, 0.1)
        assert satisfies_theorem5_condition(Fifo(), r, 1.0)


class TestOutcomes:
    def test_robust_outcome(self):
        net = single_gateway(2, mu=1.0)
        assert is_robust_outcome(net, 0.5, [0.25, 0.25])
        assert not is_robust_outcome(net, 0.5, [0.1, 0.4])

    def test_worst_floor_ratio(self):
        net = single_gateway(2, mu=1.0)
        ratio = worst_floor_ratio(net, 0.5, [0.125, 0.375])
        assert ratio == pytest.approx(0.5)


class TestReservationDelay:
    def test_formula(self):
        assert reservation_delay(1.0, 4, 0.125) == \
            pytest.approx(1.0 / (0.25 - 0.125))

    def test_overload_inf(self):
        assert math.isinf(reservation_delay(1.0, 4, 0.3))

    def test_delay_factor_n_at_fair_point(self):
        # Paper Section 3.4: reservation delay / FS delay == N.
        n, mu, rho = 6, 1.0, 0.5
        rate = rho * mu / n
        fs_delay = FairShare().delays(np.full(n, rate), mu)[0]
        resv = reservation_delay(mu, n, rate)
        assert resv / fs_delay == pytest.approx(n)

    def test_invalid_n(self):
        with pytest.raises(RateVectorError):
            reservation_delay(1.0, 0, 0.1)
