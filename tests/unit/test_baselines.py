"""Unit tests for the baseline algorithms."""

import numpy as np
import pytest

from repro.baselines.chiu_jain import run_chiu_jain
from repro.baselines.decbit import run_decbit_windows
from repro.baselines.jacobson import run_tahoe
from repro.baselines.reservation import (reservation_delays,
                                         reservation_rates)
from repro.core.topology import single_gateway, two_gateway_shared
from repro.errors import RateVectorError


class TestChiuJain:
    def test_history_shape(self):
        res = run_chiu_jain([0.1, 0.2], goal=1.0, steps=100)
        assert res.rates.shape == (101, 2)
        assert res.feedback.shape == (100,)

    def test_fairness_monotone_nondecreasing(self):
        res = run_chiu_jain([0.05, 0.6], goal=1.0, steps=600)
        traj = res.fairness_trajectory
        assert np.all(np.diff(traj) >= -1e-9)

    def test_fairness_converges_to_one(self):
        res = run_chiu_jain([0.05, 0.6], goal=1.0, steps=800)
        assert res.fairness_trajectory[-1] > 0.999

    def test_oscillates_around_goal(self):
        res = run_chiu_jain([0.4, 0.4], goal=1.0, steps=600)
        totals = res.rates[-100:].sum(axis=1)
        assert totals.min() < 1.0 < totals.max()
        assert res.amplitude(100) > 0.0

    def test_mean_total_near_goal(self):
        res = run_chiu_jain([0.4, 0.4], goal=1.0, steps=800)
        assert res.mean_total(200) == pytest.approx(1.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(RateVectorError):
            run_chiu_jain([0.1], goal=-1.0)
        with pytest.raises(RateVectorError):
            run_chiu_jain([0.1], goal=1.0, multiplicative=1.5)


class TestTahoe:
    def test_synchronized_sawtooth(self):
        res = run_tahoe([1.0, 1.0], pipe=30.0, steps=500)
        assert res.loss_epochs.size >= 2
        periods = res.sawtooth_periods
        # After the first cycle the period is constant (synchronized).
        assert np.all(periods[1:] == periods[1])

    def test_period_grows_with_pipe(self):
        small = run_tahoe([1.0, 1.0], pipe=20.0, steps=800)
        large = run_tahoe([1.0, 1.0], pipe=80.0, steps=800)
        assert np.mean(large.sawtooth_periods[1:]) > \
            np.mean(small.sawtooth_periods[1:])

    def test_reno_halves_instead_of_reset(self):
        tahoe = run_tahoe([8.0, 8.0], pipe=17.0, steps=2)
        reno = run_tahoe([8.0, 8.0], pipe=17.0, steps=2, reno=True)
        # windows were forced over pipe at step 1? sum=16 < 17, grow,
        # then lose: tahoe resets to 1, reno halves.
        assert tahoe.windows[-1][0] <= reno.windows[-1][0]

    def test_validation(self):
        with pytest.raises(RateVectorError):
            run_tahoe([0.0], pipe=10.0)
        with pytest.raises(RateVectorError):
            run_tahoe([1.0], pipe=0.0)


class TestDecbit:
    def test_equal_latency_fair_on_average(self):
        net = single_gateway(2, mu=1.0)
        res = run_decbit_windows(net, [1.0, 1.0], steps=200)
        means = res.mean_rates(50)
        assert means[0] == pytest.approx(means[1], rel=1e-6)

    def test_windows_stay_positive(self):
        net = single_gateway(2, mu=1.0)
        res = run_decbit_windows(net, [1.0, 1.0], steps=200)
        assert np.all(res.windows > 0)

    def test_oscillation_present(self):
        net = single_gateway(2, mu=1.0)
        res = run_decbit_windows(net, [1.0, 1.0], steps=300)
        tail = res.rates[-100:, 0]
        assert tail.max() - tail.min() > 1e-3

    def test_validation(self):
        net = single_gateway(2, mu=1.0)
        with pytest.raises(RateVectorError):
            run_decbit_windows(net, [0.0, 1.0])

    def test_mean_rates_tail_check(self):
        net = single_gateway(2, mu=1.0)
        res = run_decbit_windows(net, [1.0, 1.0], steps=50)
        with pytest.raises(RateVectorError):
            res.mean_rates(0)


class TestReservation:
    def test_rates_equal_floor(self):
        net = single_gateway(4, mu=2.0)
        rates = reservation_rates(net, 0.5)
        assert np.allclose(rates, 0.25)

    def test_delays_formula(self):
        net = single_gateway(4, mu=1.0)
        d = reservation_delays(net, 0.5)
        # slice = 0.25, rate = 0.125: delay = 1/(0.25 - 0.125) = 8.
        assert np.allclose(d, 8.0)

    def test_multi_gateway_path_sum(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=1.0)
        d = reservation_delays(net, 0.5)
        # long reserves 0.5 slices at both gateways, rate 0.25:
        # delay = 2 * 1/(0.5 - 0.25) = 8.
        long = net.connection_index("long")
        assert d[long] == pytest.approx(8.0)
