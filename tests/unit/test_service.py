"""Unit tests for the service-discipline base and preemptive priority."""

import math

import numpy as np
import pytest

from repro.core.math_utils import g
from repro.core.service import PreemptivePriority, ServiceDiscipline
from repro.errors import RateVectorError


class TestPreemptivePriority:
    def test_priority_order_validation(self):
        with pytest.raises(RateVectorError):
            PreemptivePriority([0, 0, 1])
        with pytest.raises(RateVectorError):
            PreemptivePriority([1, 2, 3])

    def test_top_class_sees_own_mm1(self):
        disc = PreemptivePriority([0, 1])
        q = disc.queue_lengths([0.4, 0.3], 1.0)
        assert q[0] == pytest.approx(g(0.4))

    def test_cumulative_conservation(self):
        disc = PreemptivePriority([0, 1, 2])
        r = np.array([0.2, 0.3, 0.25])
        q = disc.queue_lengths(r, 1.0)
        assert q[0] + q[1] == pytest.approx(g(0.5))
        assert q.sum() == pytest.approx(g(0.75))

    def test_order_matters(self):
        r = np.array([0.3, 0.3])
        q_a = PreemptivePriority([0, 1]).queue_lengths(r, 1.0)
        q_b = PreemptivePriority([1, 0]).queue_lengths(r, 1.0)
        assert q_a[0] == pytest.approx(q_b[1])
        assert q_a[0] < q_a[1]

    def test_low_priority_starved_on_overload(self):
        disc = PreemptivePriority([0, 1])
        q = disc.queue_lengths([0.6, 0.6], 1.0)
        assert np.isfinite(q[0])
        assert math.isinf(q[1])

    def test_zero_rate_zero_queue(self):
        disc = PreemptivePriority([0, 1])
        q = disc.queue_lengths([0.0, 0.5], 1.0)
        assert q[0] == 0.0

    def test_wrong_length_rejected(self):
        disc = PreemptivePriority([0, 1])
        with pytest.raises(RateVectorError):
            disc.queue_lengths([0.1, 0.2, 0.3], 1.0)


class TestDelays:
    def test_little_law(self):
        disc = PreemptivePriority([0, 1])
        r = np.array([0.2, 0.4])
        q = disc.queue_lengths(r, 1.0)
        d = disc.delays(r, 1.0)
        assert np.allclose(d, q / r)

    def test_total_queue_default(self):
        disc = PreemptivePriority([0, 1])
        assert disc.total_queue([0.2, 0.4], 1.0) == \
            pytest.approx(g(0.6))

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            ServiceDiscipline()
