"""Unit tests for the Fair Share queue law and Table 1 decomposition."""

import math

import numpy as np
import pytest

from repro.core.fairshare import (FairShare, cumulative_loads,
                                  cumulative_loads_batch,
                                  fair_share_queues_recursive,
                                  priority_decomposition)
from repro.core.math_utils import g
from repro.errors import RateVectorError


class TestPriorityDecomposition:
    def test_table1_shape(self):
        r = np.array([0.1, 0.2, 0.3, 0.4])
        d = priority_decomposition(r)
        assert d.shape == (4, 4)

    def test_rows_sum_to_rates(self):
        r = np.array([0.3, 0.1, 0.4, 0.2])
        d = priority_decomposition(r)
        assert np.allclose(d.sum(axis=1), r)

    def test_paper_example_structure(self):
        # Sorted rates r1<r2<r3<r4: row of the largest connection is
        # (r1, r2-r1, r3-r2, r4-r3).
        r = np.array([0.1, 0.2, 0.3, 0.4])
        d = priority_decomposition(r)
        assert np.allclose(d[3], [0.1, 0.1, 0.1, 0.1])
        assert np.allclose(d[0], [0.1, 0.0, 0.0, 0.0])
        assert np.allclose(d[1], [0.1, 0.1, 0.0, 0.0])

    def test_unsorted_input(self):
        r = np.array([0.4, 0.1])
        d = priority_decomposition(r)
        assert np.allclose(d[1], [0.1, 0.0])
        assert np.allclose(d[0], [0.1, 0.3])

    def test_ties_get_zero_width_classes(self):
        r = np.array([0.2, 0.2])
        d = priority_decomposition(r)
        assert np.allclose(d[:, 0], [0.2, 0.2])
        assert np.allclose(d[:, 1], [0.0, 0.0])

    def test_zero_rate_row_is_zero(self):
        d = priority_decomposition([0.0, 0.5])
        assert np.allclose(d[0], 0.0)


class TestCumulativeLoads:
    def test_formula(self):
        # sigma_k = sum_m min(r_m, r_(k)) / mu
        r = np.array([0.1, 0.3])
        sigma = cumulative_loads(r, 1.0)
        assert sigma[0] == pytest.approx(0.2)   # min sums: 0.1+0.1
        assert sigma[1] == pytest.approx(0.4)   # 0.1+0.3

    def test_monotone(self):
        rng = np.random.default_rng(1)
        r = rng.uniform(0, 0.3, 6)
        sigma = cumulative_loads(r, 1.0)
        assert np.all(np.diff(sigma) >= -1e-15)

    def test_last_is_total_load(self):
        r = np.array([0.1, 0.2, 0.15])
        sigma = cumulative_loads(r, 2.0)
        assert sigma[-1] == pytest.approx(r.sum() / 2.0)

    def test_permutation_invariant_bitwise(self):
        # Both paths sum over the sorted rates, so permuting the input
        # changes nothing — not even the last ulp.
        rng = np.random.default_rng(13)
        vals = rng.uniform(0.01, 0.3, 3)
        r = rng.choice(vals, size=7)
        perm = rng.permutation(7)
        assert np.array_equal(cumulative_loads(r, 1.0),
                              cumulative_loads(r[perm], 1.0))

    def test_batch_matches_scalar_bitwise(self):
        rng = np.random.default_rng(14)
        batch = rng.uniform(0.0, 0.3, size=(6, 5))
        batch[2, 1] = batch[2, 3]  # inject a tie
        sigma_b = cumulative_loads_batch(batch, 1.3)
        for m in range(6):
            assert np.array_equal(sigma_b[m],
                                  cumulative_loads(batch[m], 1.3))


class TestFairShareQueues:
    def test_matches_recursion(self, fair_share):
        rng = np.random.default_rng(2)
        for _ in range(20):
            r = rng.uniform(0, 0.24, 4)
            q1 = fair_share.queue_lengths(r, 1.0)
            q2 = fair_share_queues_recursive(r, 1.0)
            assert np.allclose(q1, q2)

    def test_two_connection_closed_form(self, fair_share):
        # Q1 = g(2 r1)/2, Q2 = g(r1+r2) - g(2 r1)/2 for r1 < r2, mu=1.
        r = np.array([0.2, 0.5])
        q = fair_share.queue_lengths(r, 1.0)
        assert q[0] == pytest.approx(g(0.4) / 2)
        assert q[1] == pytest.approx(g(0.7) - g(0.4) / 2)

    def test_total_conserved(self, fair_share, rates4):
        assert fair_share.total_queue(rates4, 1.0) == \
            pytest.approx(g(rates4.sum()))

    def test_symmetric_case_equal_queues(self, fair_share):
        q = fair_share.queue_lengths([0.2, 0.2, 0.2], 1.0)
        assert np.allclose(q, q[0])
        assert q.sum() == pytest.approx(g(0.6))

    def test_small_connection_isolated_from_overload(self, fair_share):
        # Total load 1.5 >= 1, but the small connection only sees
        # sigma_1 = 2 * 0.1 = 0.2 and keeps a finite queue.
        q = fair_share.queue_lengths([0.1, 1.4], 1.0)
        assert q[0] == pytest.approx(g(0.2) / 2)
        assert math.isinf(q[1])

    def test_ordering_follows_rates(self, fair_share):
        r = np.array([0.05, 0.15, 0.3])
        q = fair_share.queue_lengths(r, 1.0)
        assert q[0] < q[1] < q[2]

    def test_zero_rate_zero_queue(self, fair_share):
        q = fair_share.queue_lengths([0.0, 0.3], 1.0)
        assert q[0] == 0.0

    def test_permutation_equivariance(self, fair_share):
        r = np.array([0.3, 0.1, 0.2])
        q = fair_share.queue_lengths(r, 1.0)
        perm = np.array([1, 2, 0])
        q_perm = fair_share.queue_lengths(r[perm], 1.0)
        assert np.allclose(q[perm], q_perm)

    def test_tied_rates_permutation_invariant_bitwise(self, fair_share):
        # FP addition is not associative, so the cumulative loads must
        # be summed in canonical (sorted) order: connections with EQUAL
        # rates then get bit-identical queues under any permutation of
        # the input vector — not merely allclose.
        rng = np.random.default_rng(11)
        for _ in range(25):
            vals = rng.uniform(0.01, 0.24, 3)
            r = rng.choice(vals, size=6)  # guaranteed ties
            perm = rng.permutation(6)
            q = fair_share.queue_lengths(r, 1.0)
            q_perm = fair_share.queue_lengths(r[perm], 1.0)
            assert np.array_equal(q[perm], q_perm)

    def test_tied_rates_batch_matches_scalar_bitwise(self, fair_share):
        rng = np.random.default_rng(12)
        vals = rng.uniform(0.01, 0.24, 2)
        batch = rng.choice(vals, size=(8, 5))
        q_batch = fair_share.queue_lengths_batch(batch, 1.0)
        for m in range(8):
            assert np.array_equal(
                q_batch[m], fair_share.queue_lengths(batch[m], 1.0))

    def test_triangularity_queue_independent_of_larger_rates(
            self, fair_share):
        # Q of the smallest connection must not change when a larger
        # connection's rate changes (as long as it stays larger).
        base = np.array([0.1, 0.3, 0.4])
        bumped = np.array([0.1, 0.35, 0.45])
        q0 = fair_share.queue_lengths(base, 1.0)[0]
        q0_b = fair_share.queue_lengths(bumped, 1.0)[0]
        assert q0 == pytest.approx(q0_b)

    def test_scales_with_mu(self, fair_share, rates4):
        q1 = fair_share.queue_lengths(rates4, 1.0)
        q2 = fair_share.queue_lengths(rates4 * 3, 3.0)
        assert np.allclose(q1, q2)

    def test_bad_mu(self, fair_share):
        with pytest.raises(RateVectorError):
            fair_share.queue_lengths([0.1], -1.0)

    def test_recursive_overload_tail_infinite(self):
        q = fair_share_queues_recursive([0.2, 0.5, 0.6], 1.0)
        assert np.isfinite(q[0])
        assert math.isinf(q[2])

    def test_name(self, fair_share):
        assert fair_share.name == "fair-share"
