"""Unit tests for the simulator primitives: events, rng, queues,
monitors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.events import Scheduler
from repro.simulation.monitors import EndToEndMonitor, GatewayMonitor
from repro.simulation.packet import Packet
from repro.simulation.queues import (FairQueueingQueue, FairShareQueue,
                                     FifoQueue, FixedPriorityQueue,
                                     make_discipline)
from repro.simulation.rng import RandomStreams


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        seen = []
        sched.schedule(2.0, lambda: seen.append("b"))
        sched.schedule(1.0, lambda: seen.append("a"))
        sched.run_until(3.0)
        assert seen == ["a", "b"]
        assert sched.now == 3.0

    def test_fifo_tie_break(self):
        sched = Scheduler()
        seen = []
        sched.schedule(1.0, lambda: seen.append(1))
        sched.schedule(1.0, lambda: seen.append(2))
        sched.run_until(1.0)
        assert seen == [1, 2]

    def test_cancellation(self):
        sched = Scheduler()
        seen = []
        handle = sched.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        sched.run_until(2.0)
        assert seen == []

    def test_schedule_in_past_rejected(self):
        sched = Scheduler()
        sched.run_until(5.0)
        with pytest.raises(SimulationError):
            sched.schedule(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sched = Scheduler()
        seen = []

        def first():
            sched.schedule_after(1.0, lambda: seen.append("second"))
        sched.schedule(1.0, first)
        sched.run_until(3.0)
        assert seen == ["second"]

    def test_events_beyond_horizon_kept(self):
        sched = Scheduler()
        seen = []
        sched.schedule(10.0, lambda: seen.append("late"))
        sched.run_until(5.0)
        assert seen == []
        sched.run_until(11.0)
        assert seen == ["late"]

    def test_peek_time_skips_cancelled(self):
        sched = Scheduler()
        h = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        h.cancel()
        assert sched.peek_time() == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_after(-1.0, lambda: None)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(float("inf"), lambda: None)


class TestRandomStreams:
    def test_deterministic(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        s1 = RandomStreams(7)
        first = s1.stream("a").random(3)
        s2 = RandomStreams(7)
        s2.stream("b")  # create b first
        second = s2.stream("a").random(3)
        assert np.array_equal(first, second)

    def test_distinct_names_distinct_streams(self):
        s = RandomStreams(7)
        a = s.stream("arrival:c1").random(4)
        b = s.stream("arrival:c2").random(4)
        assert not np.array_equal(a, b)

    def test_exponential_positive(self):
        s = RandomStreams(0)
        assert s.exponential("e", 2.0) > 0

    def test_uniform_range(self):
        s = RandomStreams(0)
        assert 0.0 <= s.uniform("u") <= 1.0


def _pkt(conn=0, seq=0, service=1.0):
    p = Packet(conn=conn, seq=seq, created=0.0)
    p.service_time = service
    p.remaining = service
    return p


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        q.push(_pkt(seq=1), 0.0)
        q.push(_pkt(seq=2), 0.0)
        assert q.pop(0.0).seq == 1
        assert q.pop(0.0).seq == 2
        assert q.pop(0.0) is None

    def test_requeue_front(self):
        q = FifoQueue()
        q.push(_pkt(seq=1), 0.0)
        p2 = _pkt(seq=2)
        q.requeue_front(p2)
        assert q.pop(0.0).seq == 2

    def test_len(self):
        q = FifoQueue()
        assert len(q) == 0
        q.push(_pkt(), 0.0)
        assert len(q) == 1

    def test_never_preempts(self):
        q = FifoQueue()
        assert not q.would_preempt(_pkt(), _pkt())


class TestFixedPriorityQueue:
    def test_higher_class_first(self):
        q = FixedPriorityQueue({0: 1, 1: 0})
        q.push(_pkt(conn=0, seq=1), 0.0)
        q.push(_pkt(conn=1, seq=2), 0.0)
        assert q.pop(0.0).conn == 1

    def test_preemption_decision(self):
        q = FixedPriorityQueue({0: 1, 1: 0})
        low = _pkt(conn=0)
        q.push(low, 0.0)
        low = q.pop(0.0)
        high = _pkt(conn=1)
        q.push(high, 0.0)
        high = q.pop(0.0)
        assert q.would_preempt(low, high)
        assert not q.would_preempt(high, low)

    def test_unknown_conn_rejected(self):
        q = FixedPriorityQueue({0: 0})
        with pytest.raises(SimulationError):
            q.push(_pkt(conn=5), 0.0)


class TestFairShareQueue:
    def _bound(self, rates):
        q = FairShareQueue()
        q.bind(list(range(len(rates))),
               rate_provider=lambda: np.asarray(rates),
               rng=np.random.default_rng(0))
        return q

    def test_smallest_connection_always_top_class(self):
        q = self._bound([0.1, 0.5, 0.9])
        for _ in range(20):
            q.push(_pkt(conn=0), 0.0)
        # All of connection 0's packets are in class 0.
        classes = set()
        while True:
            pkt = q.pop(0.0)
            if pkt is None:
                break
            classes.add(pkt.priority_class)
        assert classes == {0}

    def test_largest_connection_spreads_over_classes(self):
        q = self._bound([0.1, 0.5, 0.9])
        seen = set()
        for _ in range(300):
            pkt = _pkt(conn=2)
            q.push(pkt, 0.0)
            seen.add(pkt.priority_class)
        assert seen == {0, 1, 2}

    def test_thinning_probabilities(self):
        # widths for conn with rate 0.9 given rates (0.1, 0.5, 0.9):
        # (0.1, 0.4, 0.4)/0.9.
        q = self._bound([0.1, 0.5, 0.9])
        counts = np.zeros(3)
        trials = 6000
        for _ in range(trials):
            pkt = _pkt(conn=2)
            q.push(pkt, 0.0)
            counts[pkt.priority_class] += 1
        freq = counts / trials
        assert freq[0] == pytest.approx(0.1 / 0.9, abs=0.03)
        assert freq[1] == pytest.approx(0.4 / 0.9, abs=0.03)

    def test_unbound_raises(self):
        q = FairShareQueue()
        with pytest.raises(SimulationError):
            q.push(_pkt(), 0.0)

    def test_zero_rate_defaults_to_top_class(self):
        q = self._bound([0.0, 0.5])
        pkt = _pkt(conn=0)
        q.push(pkt, 0.0)
        assert pkt.priority_class == 0


class TestFairQueueingQueue:
    def test_interleaves_flows(self):
        q = FairQueueingQueue()
        # Flow 0 dumps a burst; flow 1 sends one packet: flow 1's
        # packet must not wait behind the whole burst.
        for k in range(5):
            q.push(_pkt(conn=0, seq=k, service=1.0), 0.0)
        q.push(_pkt(conn=1, seq=0, service=1.0), 0.0)
        order = []
        while True:
            pkt = q.pop(0.0)
            if pkt is None:
                break
            order.append((pkt.conn, pkt.seq))
        pos = order.index((1, 0))
        assert pos <= 1

    def test_non_preemptive(self):
        q = FairQueueingQueue()
        with pytest.raises(SimulationError):
            q.requeue_front(_pkt())

    def test_len_tracks(self):
        q = FairQueueingQueue()
        q.push(_pkt(), 0.0)
        assert len(q) == 1
        q.pop(0.0)
        assert len(q) == 0


class TestMakeDiscipline:
    def test_known_kinds(self):
        assert isinstance(make_discipline("fifo"), FifoQueue)
        assert isinstance(make_discipline("fair-share"), FairShareQueue)

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_discipline("lifo")


class TestMonitors:
    def test_time_weighted_average(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 1.0)    # occupancy 1 from t=1
        m.on_departure(0, 3.0)  # occupancy 0 from t=3
        assert m.mean_queue_lengths(4.0)[0] == pytest.approx(0.5)

    def test_reset_discards_history(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 0.0)
        m.on_departure(0, 2.0)
        m.reset_statistics(2.0)
        assert m.mean_queue_lengths(4.0)[0] == 0.0

    def test_occupancy_preserved_across_reset(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 0.0)
        m.reset_statistics(1.0)
        # still in system: from t=1 to t=2 occupancy is 1.
        assert m.mean_queue_lengths(2.0)[0] == pytest.approx(1.0)

    def test_underflow_detected(self):
        m = GatewayMonitor([0])
        with pytest.raises(SimulationError):
            m.on_departure(0, 1.0)

    def test_time_reversal_detected(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 5.0)
        with pytest.raises(SimulationError):
            m.on_arrival(0, 1.0)

    def test_arrival_rates(self):
        m = GatewayMonitor([0, 1])
        for t in (1.0, 2.0, 3.0, 4.0):
            m.on_arrival(0, t)
        assert m.arrival_rates(4.0)[0] == pytest.approx(1.0)
        assert m.arrival_rates(4.0)[1] == 0.0

    def test_end_to_end_monitor(self):
        m = EndToEndMonitor(2)
        m.on_delivery(0, created=1.0, now=3.0)
        m.on_delivery(0, created=2.0, now=3.0)
        assert m.throughput(4.0)[0] == pytest.approx(0.5)
        assert m.mean_delays()[0] == pytest.approx(1.5)
        assert np.isnan(m.mean_delays()[1])
        assert m.delivered[0] == 2
