"""Unit tests for the simulator primitives: events, rng, queues,
monitors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.events import EventCalendar, Scheduler
from repro.simulation.monitors import EndToEndMonitor, GatewayMonitor
from repro.simulation.packet import Packet, PacketPool
from repro.simulation.queues import (FairQueueingQueue, FairShareQueue,
                                     FifoQueue, FixedPriorityQueue,
                                     make_discipline)
from repro.simulation.rng import RandomStreams, VariateBuffer


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        seen = []
        sched.schedule(2.0, lambda: seen.append("b"))
        sched.schedule(1.0, lambda: seen.append("a"))
        sched.run_until(3.0)
        assert seen == ["a", "b"]
        assert sched.now == 3.0

    def test_fifo_tie_break(self):
        sched = Scheduler()
        seen = []
        sched.schedule(1.0, lambda: seen.append(1))
        sched.schedule(1.0, lambda: seen.append(2))
        sched.run_until(1.0)
        assert seen == [1, 2]

    def test_cancellation(self):
        sched = Scheduler()
        seen = []
        handle = sched.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        sched.run_until(2.0)
        assert seen == []

    def test_schedule_in_past_rejected(self):
        sched = Scheduler()
        sched.run_until(5.0)
        with pytest.raises(SimulationError):
            sched.schedule(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sched = Scheduler()
        seen = []

        def first():
            sched.schedule_after(1.0, lambda: seen.append("second"))
        sched.schedule(1.0, first)
        sched.run_until(3.0)
        assert seen == ["second"]

    def test_events_beyond_horizon_kept(self):
        sched = Scheduler()
        seen = []
        sched.schedule(10.0, lambda: seen.append("late"))
        sched.run_until(5.0)
        assert seen == []
        sched.run_until(11.0)
        assert seen == ["late"]

    def test_peek_time_skips_cancelled(self):
        sched = Scheduler()
        h = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        h.cancel()
        assert sched.peek_time() == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_after(-1.0, lambda: None)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(float("inf"), lambda: None)


class TestEventCalendar:
    def test_pops_in_time_order(self):
        cal = EventCalendar()
        cal.schedule(2.0, 1, a=20)
        cal.schedule(1.0, 0, a=10)
        cal.schedule(3.0, 2, a=30)
        popped = [cal.pop() for _ in range(3)]
        assert [p[0] for p in popped] == [1.0, 2.0, 3.0]
        assert [p[1] for p in popped] == [0, 1, 2]
        assert [p[2] for p in popped] == [10, 20, 30]
        assert cal.pop() is None

    def test_ties_break_by_insertion_order(self):
        cal = EventCalendar()
        for k in range(5):
            cal.schedule(1.0, 0, a=k)
        assert [cal.pop()[2] for k in range(5)] == [0, 1, 2, 3, 4]

    def test_cancellation_and_slot_recycling(self):
        cal = EventCalendar()
        slot = cal.schedule(1.0, 0, a=1)
        cal.schedule(2.0, 0, a=2)
        cal.cancel(slot)
        assert len(cal) == 1
        assert cal.peek_time() == 2.0  # recycles the dead slot
        # The freed slot is reused instead of growing the columns.
        assert cal.schedule(3.0, 0, a=3) == slot
        assert cal.capacity == 2
        assert cal.pop()[2] == 2
        assert cal.pop()[2] == 3

    def test_long_run_recycles_bounded_slots(self):
        cal = EventCalendar()
        for k in range(100):
            cal.schedule(float(k), 0, a=k)
            assert cal.pop() == (float(k), 0, k, 0)
        assert cal.capacity == 1

    def test_payload_entries_interleave_with_slots(self):
        import heapq
        cal = EventCalendar()
        cal.schedule(2.0, 1, a=7, b=8)
        # The fast kernel pushes never-cancelled events directly as
        # (time, seq, -1, kind, a[, b]) payload tuples.
        heapq.heappush(cal._heap, (1.0, 10 ** 9, -1, 3, 42))
        heapq.heappush(cal._heap, (3.0, 10 ** 9 + 1, -1, 4, 5, 6))
        assert cal.peek_time() == 1.0
        assert cal.pop() == (1.0, 3, 42, 0)
        assert cal.pop() == (2.0, 1, 7, 8)
        assert cal.pop() == (3.0, 4, 5, 6)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(SimulationError):
            EventCalendar().schedule(float("nan"), 0)

    def test_operands_roundtrip(self):
        cal = EventCalendar()
        cal.schedule(1.0, 5, a=-3, b=2 ** 40)
        assert cal.pop() == (1.0, 5, -3, 2 ** 40)


class TestPacketPool:
    def test_alloc_initialises_fields(self):
        pool = PacketPool()
        pid = pool.alloc(3, 17, 2.5)
        assert pool.conn[pid] == 3
        assert pool.seq[pid] == 17
        assert pool.created[pid] == 2.5
        assert pool.hop[pid] == 0
        assert pool.remaining[pid] == 0.0
        assert pool.klass[pid] == 0

    def test_free_recycles_slot(self):
        pool = PacketPool()
        pid = pool.alloc(0, 0, 0.0)
        pool.hop[pid] = 2
        pool.remaining[pid] = 1.5
        pool.free(pid)
        again = pool.alloc(1, 1, 1.0)
        assert again == pid
        # Recycled slots come back fully reset.
        assert pool.hop[again] == 0
        assert pool.remaining[again] == 0.0
        assert pool.capacity == 1

    def test_capacity_and_in_flight(self):
        pool = PacketPool()
        pids = [pool.alloc(0, k, 0.0) for k in range(4)]
        assert pool.capacity == 4
        assert pool.in_flight == 4
        pool.free(pids[1])
        pool.free(pids[2])
        assert pool.capacity == 4
        assert pool.in_flight == 2


class TestVariateBuffer:
    def test_buffered_exponentials_match_scalar_draws(self):
        buffered = RandomStreams(7)
        scalar = RandomStreams(7)
        buf = buffered.buffer("service:g0", block=8)
        got = [buf.next_exponential(2.0) for _ in range(20)]
        want = [scalar.exponential("service:g0", 0.5) for _ in range(20)]
        assert got == want  # bit-identical across the block refills

    def test_buffered_uniforms_match_scalar_draws(self):
        buf = RandomStreams(3).buffer("thinning:g0", block=4)
        scalar = RandomStreams(3)
        got = [buf.next_uniform() for _ in range(10)]
        want = [scalar.uniform("thinning:g0") for _ in range(10)]
        assert got == want

    def test_mixing_draw_kinds_raises(self):
        buf = RandomStreams(0).buffer("s")
        buf.next_exponential(1.0)
        with pytest.raises(SimulationError):
            buf.next_uniform()

    def test_block_size_validated(self):
        gen = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            VariateBuffer(gen, block=0)


class TestRandomStreams:
    def test_deterministic(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        s1 = RandomStreams(7)
        first = s1.stream("a").random(3)
        s2 = RandomStreams(7)
        s2.stream("b")  # create b first
        second = s2.stream("a").random(3)
        assert np.array_equal(first, second)

    def test_distinct_names_distinct_streams(self):
        s = RandomStreams(7)
        a = s.stream("arrival:c1").random(4)
        b = s.stream("arrival:c2").random(4)
        assert not np.array_equal(a, b)

    def test_exponential_positive(self):
        s = RandomStreams(0)
        assert s.exponential("e", 2.0) > 0

    def test_uniform_range(self):
        s = RandomStreams(0)
        assert 0.0 <= s.uniform("u") <= 1.0

    def test_nonpositive_rate_rejected(self):
        s = RandomStreams(0)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                s.exponential("e", bad)
            with pytest.raises(SimulationError):
                s.exponentials("e", bad, 4)

    def test_bad_draw_count_rejected(self):
        s = RandomStreams(0)
        with pytest.raises(SimulationError):
            s.exponentials("e", 1.0, -1)
        with pytest.raises(SimulationError):
            s.uniforms("u", 2.5)

    def test_batched_draws_match_scalar_draws(self):
        batched = RandomStreams(11).exponentials("e", 4.0, 16)
        scalar = RandomStreams(11)
        want = [scalar.exponential("e", 4.0) for _ in range(16)]
        assert batched.tolist() == want
        scalar_u = RandomStreams(5)
        assert RandomStreams(5).uniforms("u", 8).tolist() == \
            [scalar_u.uniform("u") for _ in range(8)]

    def test_stream_lookup_is_cached(self):
        s = RandomStreams(0)
        assert s.stream("a") is s.stream("a")
        assert s.buffer("a", 64) is s.buffer("a", 64)

    def test_caching_does_not_change_the_draws(self):
        # Drawing through a cached handle continues the one bitstream.
        s = RandomStreams(9)
        first = s.stream("x").random(3)
        second = s.stream("x").random(3)
        fresh = RandomStreams(9).stream("x").random(6)
        assert np.array_equal(np.concatenate([first, second]), fresh)


def _pkt(conn=0, seq=0, service=1.0):
    p = Packet(conn=conn, seq=seq, created=0.0)
    p.service_time = service
    p.remaining = service
    return p


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        q.push(_pkt(seq=1), 0.0)
        q.push(_pkt(seq=2), 0.0)
        assert q.pop(0.0).seq == 1
        assert q.pop(0.0).seq == 2
        assert q.pop(0.0) is None

    def test_requeue_front(self):
        q = FifoQueue()
        q.push(_pkt(seq=1), 0.0)
        p2 = _pkt(seq=2)
        q.requeue_front(p2)
        assert q.pop(0.0).seq == 2

    def test_len(self):
        q = FifoQueue()
        assert len(q) == 0
        q.push(_pkt(), 0.0)
        assert len(q) == 1

    def test_never_preempts(self):
        q = FifoQueue()
        assert not q.would_preempt(_pkt(), _pkt())


class TestFixedPriorityQueue:
    def test_higher_class_first(self):
        q = FixedPriorityQueue({0: 1, 1: 0})
        q.push(_pkt(conn=0, seq=1), 0.0)
        q.push(_pkt(conn=1, seq=2), 0.0)
        assert q.pop(0.0).conn == 1

    def test_preemption_decision(self):
        q = FixedPriorityQueue({0: 1, 1: 0})
        low = _pkt(conn=0)
        q.push(low, 0.0)
        low = q.pop(0.0)
        high = _pkt(conn=1)
        q.push(high, 0.0)
        high = q.pop(0.0)
        assert q.would_preempt(low, high)
        assert not q.would_preempt(high, low)

    def test_unknown_conn_rejected(self):
        q = FixedPriorityQueue({0: 0})
        with pytest.raises(SimulationError):
            q.push(_pkt(conn=5), 0.0)


class TestFairShareQueue:
    def _bound(self, rates):
        q = FairShareQueue()
        q.bind(list(range(len(rates))),
               rate_provider=lambda: np.asarray(rates),
               rng=np.random.default_rng(0))
        return q

    def test_smallest_connection_always_top_class(self):
        q = self._bound([0.1, 0.5, 0.9])
        for _ in range(20):
            q.push(_pkt(conn=0), 0.0)
        # All of connection 0's packets are in class 0.
        classes = set()
        while True:
            pkt = q.pop(0.0)
            if pkt is None:
                break
            classes.add(pkt.priority_class)
        assert classes == {0}

    def test_largest_connection_spreads_over_classes(self):
        q = self._bound([0.1, 0.5, 0.9])
        seen = set()
        for _ in range(300):
            pkt = _pkt(conn=2)
            q.push(pkt, 0.0)
            seen.add(pkt.priority_class)
        assert seen == {0, 1, 2}

    def test_thinning_probabilities(self):
        # widths for conn with rate 0.9 given rates (0.1, 0.5, 0.9):
        # (0.1, 0.4, 0.4)/0.9.
        q = self._bound([0.1, 0.5, 0.9])
        counts = np.zeros(3)
        trials = 6000
        for _ in range(trials):
            pkt = _pkt(conn=2)
            q.push(pkt, 0.0)
            counts[pkt.priority_class] += 1
        freq = counts / trials
        assert freq[0] == pytest.approx(0.1 / 0.9, abs=0.03)
        assert freq[1] == pytest.approx(0.4 / 0.9, abs=0.03)

    def test_unbound_raises(self):
        q = FairShareQueue()
        with pytest.raises(SimulationError):
            q.push(_pkt(), 0.0)

    def test_zero_rate_defaults_to_top_class(self):
        q = self._bound([0.0, 0.5])
        pkt = _pkt(conn=0)
        q.push(pkt, 0.0)
        assert pkt.priority_class == 0


class TestFairQueueingQueue:
    def test_interleaves_flows(self):
        q = FairQueueingQueue()
        # Flow 0 dumps a burst; flow 1 sends one packet: flow 1's
        # packet must not wait behind the whole burst.
        for k in range(5):
            q.push(_pkt(conn=0, seq=k, service=1.0), 0.0)
        q.push(_pkt(conn=1, seq=0, service=1.0), 0.0)
        order = []
        while True:
            pkt = q.pop(0.0)
            if pkt is None:
                break
            order.append((pkt.conn, pkt.seq))
        pos = order.index((1, 0))
        assert pos <= 1

    def test_non_preemptive(self):
        q = FairQueueingQueue()
        with pytest.raises(SimulationError):
            q.requeue_front(_pkt())

    def test_len_tracks(self):
        q = FairQueueingQueue()
        q.push(_pkt(), 0.0)
        assert len(q) == 1
        q.pop(0.0)
        assert len(q) == 0


class TestMakeDiscipline:
    def test_known_kinds(self):
        assert isinstance(make_discipline("fifo"), FifoQueue)
        assert isinstance(make_discipline("fair-share"), FairShareQueue)

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_discipline("lifo")


class TestMonitors:
    def test_time_weighted_average(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 1.0)    # occupancy 1 from t=1
        m.on_departure(0, 3.0)  # occupancy 0 from t=3
        assert m.mean_queue_lengths(4.0)[0] == pytest.approx(0.5)

    def test_reset_discards_history(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 0.0)
        m.on_departure(0, 2.0)
        m.reset_statistics(2.0)
        assert m.mean_queue_lengths(4.0)[0] == 0.0

    def test_occupancy_preserved_across_reset(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 0.0)
        m.reset_statistics(1.0)
        # still in system: from t=1 to t=2 occupancy is 1.
        assert m.mean_queue_lengths(2.0)[0] == pytest.approx(1.0)

    def test_underflow_detected(self):
        m = GatewayMonitor([0])
        with pytest.raises(SimulationError):
            m.on_departure(0, 1.0)

    def test_time_reversal_detected(self):
        m = GatewayMonitor([0])
        m.on_arrival(0, 5.0)
        with pytest.raises(SimulationError):
            m.on_arrival(0, 1.0)

    def test_arrival_rates(self):
        m = GatewayMonitor([0, 1])
        for t in (1.0, 2.0, 3.0, 4.0):
            m.on_arrival(0, t)
        assert m.arrival_rates(4.0)[0] == pytest.approx(1.0)
        assert m.arrival_rates(4.0)[1] == 0.0

    def test_end_to_end_monitor(self):
        m = EndToEndMonitor(2)
        m.on_delivery(0, created=1.0, now=3.0)
        m.on_delivery(0, created=2.0, now=3.0)
        assert m.throughput(4.0)[0] == pytest.approx(0.5)
        assert m.mean_delays()[0] == pytest.approx(1.5)
        assert np.isnan(m.mean_delays()[1])
        assert m.delivered[0] == 2
