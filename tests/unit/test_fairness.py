"""Unit tests for fairness predicates and max-min allocation."""

import numpy as np
import pytest

from repro.core.fairness import (is_fair, jain_index, max_min_allocation,
                                 unfairness)
from repro.core.fifo import Fifo
from repro.core.signals import FeedbackScheme, FeedbackStyle, \
    LinearSaturating
from repro.core.topology import (parking_lot, single_gateway,
                                 two_gateway_shared)
from repro.errors import RateVectorError, TopologyError


def _scheme(net, style=FeedbackStyle.AGGREGATE):
    return FeedbackScheme(net, Fifo(), LinearSaturating(), style)


class TestIsFair:
    def test_equal_split_fair(self):
        scheme = _scheme(single_gateway(3))
        assert is_fair(scheme, np.array([0.2, 0.2, 0.2]))

    def test_unequal_split_unfair(self):
        scheme = _scheme(single_gateway(3))
        assert not is_fair(scheme, np.array([0.1, 0.2, 0.2]))

    def test_unfairness_measures_excess(self):
        scheme = _scheme(single_gateway(2))
        assert unfairness(scheme, np.array([0.1, 0.3])) == \
            pytest.approx(0.2)

    def test_unequal_rates_fair_under_individual_signals(self):
        # long/a_only bottlenecked at ga (0.25 each), b_only at gb
        # (0.75).  Under *individual* signals the long connection's
        # signal at gb is below its ga signal, so gb is not its
        # bottleneck and the allocation is fair.  Under *aggregate*
        # signals both saturated gateways emit the same value, gb
        # counts as a bottleneck of the long connection too, and the
        # literal definition flags the faster b_only — the definition
        # is signal-structure dependent, exactly as in the paper.
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        rates = np.array([0.25, 0.25, 0.75])
        individual = _scheme(net, FeedbackStyle.INDIVIDUAL)
        assert is_fair(individual, rates)
        aggregate = _scheme(net, FeedbackStyle.AGGREGATE)
        assert not is_fair(aggregate, rates)

    def test_idle_network_trivially_fair(self):
        scheme = _scheme(single_gateway(2))
        assert is_fair(scheme, np.zeros(2))


class TestJainIndex:
    def test_equal_rates_give_one(self):
        assert jain_index([0.3, 0.3, 0.3]) == pytest.approx(1.0)

    def test_monopoly_gives_1_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_one(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        r = np.array([0.1, 0.4, 0.2])
        assert jain_index(r) == pytest.approx(jain_index(10 * r))


class TestMaxMinAllocation:
    def test_single_gateway(self):
        rates = max_min_allocation(single_gateway(4), {"g0": 1.0})
        assert np.allclose(rates, 0.25)

    def test_parking_lot(self):
        net = parking_lot(2, mu=1.0)
        rates = max_min_allocation(net, {g: 1.0
                                         for g in net.gateway_names})
        assert np.allclose(rates, 0.5)

    def test_bottleneck_ordering(self):
        net = two_gateway_shared()
        rates = max_min_allocation(net, {"ga": 0.4, "gb": 1.0})
        long, a_only, b_only = rates
        assert long == pytest.approx(0.2)
        assert a_only == pytest.approx(0.2)
        assert b_only == pytest.approx(0.8)

    def test_capacity_respected(self):
        net = two_gateway_shared()
        caps = {"ga": 0.3, "gb": 0.9}
        rates = max_min_allocation(net, caps)
        for g in net.gateway_names:
            used = sum(rates[i] for i in net.connections_at(g))
            assert used <= caps[g] + 1e-12

    def test_max_min_property(self):
        # No connection's rate can be raised without lowering that of a
        # connection with an equal-or-smaller rate: every connection
        # crosses a saturated gateway where it has the maximal rate.
        net = two_gateway_shared(mu_a=1.0, mu_b=3.0)
        caps = {"ga": 0.5, "gb": 1.5}
        rates = max_min_allocation(net, caps)
        for i in range(net.num_connections):
            has_tight = False
            for g in net.gamma(i):
                used = sum(rates[j] for j in net.connections_at(g))
                if used >= caps[g] - 1e-9 and \
                        rates[i] >= max(rates[j]
                                        for j in net.connections_at(g)) \
                        - 1e-9:
                    has_tight = True
            assert has_tight, f"connection {i} could be raised"

    def test_missing_capacity(self):
        with pytest.raises(TopologyError):
            max_min_allocation(single_gateway(2), {})

    def test_bad_capacity(self):
        with pytest.raises(RateVectorError):
            max_min_allocation(single_gateway(2), {"g0": 0.0})
