"""Unit tests for the structural chaos layer.

Covers the three chaos surfaces and the contracts they promise:
structural fault plans (window semantics, degradation/blackhole views,
the empty-plan bit-identity, scalar/batch replay), the adversary zoo
and the Theorem 5 floor monitor, the scenario-grammar chaos dimensions
and the adversarial-floor oracle, the controller-exclusion guards, the
seeded retry backoff, and the orchestrator's chaos hardening (schema
migration, leases, poison-shard quarantine).
"""

import json
import time

import numpy as np
import pytest

import repro.parallel as parallel_mod
import repro.parallel.orchestrator as orch_mod
from repro.chaos import (BlasterRule, CapacityDegradation,
                         GatewayBlackhole, PinnedRateRule, SawtoothRule,
                         StructuralFaultPlan, check_robustness_floor,
                         honest_indices, is_adversary)
from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import RcpSourceRule, TargetRule
from repro.core.rcp import RcpController
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.errors import ChaosError, ScenarioError, SweepError
from repro.faults import FaultPlan, SignalLoss
from repro.parallel import Orchestrator, SweepJob, _retry_backoff, sweep
from repro.parallel.orchestrator import ORCHESTRATOR_SCHEMA
from repro.scenarios import (AdversarySpec, ConnectionSpec, GatewaySpec,
                             RuleSpec, ScenarioSpec, SignalSpec,
                             StructuralInjectorSpec, StructuralPlanSpec)
from repro.scenarios.oracles import ScenarioContext, run_oracle


def fs_system(n=4, mu=1.0, eta=0.1, beta=0.5, discipline=None):
    net = single_gateway(n, mu=mu)
    return FlowControlSystem(net, discipline or FairShare(),
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=beta),
                             style=FeedbackStyle.INDIVIDUAL)


def demo_plan(seed=3):
    return StructuralFaultPlan(injectors=(
        CapacityDegradation("g0", factor=0.5, start=30, duration=30),
        GatewayBlackhole("g0", start=70, duration=20)), seed=seed)


R0 = np.array([0.05, 0.1, 0.3, 0.55])


class TestStructuralValidation:
    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 1.5,
                                        float("nan")])
    def test_degradation_factor_strictly_inside_unit_interval(
            self, factor):
        with pytest.raises(ChaosError, match="strictly in"):
            CapacityDegradation("g0", factor=factor, duration=5)

    def test_degradation_needs_gateway_name(self):
        with pytest.raises(ChaosError, match="nonempty"):
            CapacityDegradation("", factor=0.5, duration=5)

    @pytest.mark.parametrize("kwargs,match", [
        ({"start": -1}, "start"),
        ({"duration": 0}, "duration"),
        ({"duration": 5, "period": 3}, "period"),
        ({"jitter": -1}, "jitter"),
    ])
    def test_bad_windows_raise(self, kwargs, match):
        base = dict(gateway="g0", start=0, duration=1)
        base.update(kwargs)
        with pytest.raises(ChaosError, match=match):
            GatewayBlackhole(**base)

    def test_plan_rejects_non_injectors(self):
        with pytest.raises(ChaosError, match="structural injectors"):
            StructuralFaultPlan(injectors=("loss=0.3",))

    def test_plan_rejects_bad_seed(self):
        with pytest.raises(ChaosError, match="seed"):
            StructuralFaultPlan(
                injectors=(GatewayBlackhole("g0", duration=1),), seed=-1)

    def test_start_rejects_unknown_gateway(self):
        plan = StructuralFaultPlan(
            injectors=(GatewayBlackhole("gX", duration=5),))
        with pytest.raises(ChaosError, match="unknown gateway"):
            fs_system().run(R0, max_steps=50, structural=plan)


class TestStructuralSemantics:
    def test_empty_plan_is_bit_identical_scalar(self):
        system = fs_system()
        clean = system.run(R0, max_steps=400)
        chaos = system.run(R0, max_steps=400,
                           structural=StructuralFaultPlan())
        assert np.array_equal(clean.history, chaos.history)
        assert clean.outcome is chaos.outcome
        assert chaos.structural_events is None

    def test_empty_plan_is_bit_identical_batch(self):
        system = fs_system()
        starts = np.random.default_rng(1).uniform(0.05, 0.5, (6, 4))
        clean = system.run_ensemble(starts, max_steps=300)
        chaos = system.run_ensemble(starts, max_steps=300,
                                    structural=StructuralFaultPlan())
        assert np.array_equal(clean.finals, chaos.finals)
        assert clean.outcomes == chaos.outcomes
        assert chaos.structural_events is None

    def test_degradation_scales_mu_inside_the_window_only(self):
        plan = StructuralFaultPlan(injectors=(
            CapacityDegradation("g0", factor=0.5, start=10,
                                duration=5),))
        system = fs_system(mu=2.0)
        state = plan.start(system)
        assert state.resolve(9).network.mu("g0") == 2.0
        assert state.resolve(10).network.mu("g0") == 1.0
        assert state.resolve(14).network.mu("g0") == 1.0
        assert state.resolve(15).network.mu("g0") == 2.0

    def test_blackhole_marks_routed_connections(self):
        plan = StructuralFaultPlan(injectors=(
            GatewayBlackhole("g0", start=5, duration=3),))
        system = fs_system()
        state = plan.start(system)
        assert state.resolve(4).blackholed.size == 0
        assert list(state.resolve(5).blackholed) == [0, 1, 2, 3]

    def test_transitions_are_recorded_in_step_order(self):
        # short blackhole: rates must stay positive, else the zero
        # fixed point converges the run before the restore fires
        plan = StructuralFaultPlan(injectors=(
            CapacityDegradation("g0", factor=0.5, start=30,
                                duration=30),
            GatewayBlackhole("g0", start=70, duration=2)), seed=3)
        system = fs_system()
        traj = system.run(R0, max_steps=800, tol=0.0, structural=plan)
        kinds = [(e.step, e.kind, e.detail)
                 for e in traj.structural_events]
        assert kinds == [(30, "degrade", 0.5), (60, "restore", 1.0),
                         (70, "blackhole", 0.0), (72, "restore", 1.0)]

    def test_periodic_window_repeats(self):
        plan = StructuralFaultPlan(injectors=(
            CapacityDegradation("g0", factor=0.6, start=10, duration=5,
                                period=40),))
        system = fs_system()
        traj = system.run(R0, max_steps=100, tol=0.0, structural=plan)
        opens = [e.step for e in traj.structural_events
                 if e.kind == "degrade"]
        assert opens == [10, 50, 90]

    def test_blackhole_drives_rates_down_then_restores(self):
        plan = StructuralFaultPlan(injectors=(
            GatewayBlackhole("g0", start=100, duration=2),))
        system = fs_system()
        traj = system.run(R0, max_steps=800, tol=0.0, structural=plan)
        pre = traj.history[95].sum()
        during = traj.history[100:104].sum(axis=1).min()
        assert during < 0.3 * pre
        assert traj.final.sum() > 0.8 * pre

    def test_replay_is_bit_identical(self):
        system = fs_system()
        a = system.run(R0, max_steps=800, structural=demo_plan())
        b = system.run(R0, max_steps=800, structural=demo_plan())
        assert np.array_equal(a.history, b.history)
        assert a.structural_events == b.structural_events

    def test_ensemble_member_matches_scalar_replay(self):
        plan = StructuralFaultPlan(injectors=(
            CapacityDegradation("g0", factor=0.5, start=20, duration=15,
                                jitter=4),), seed=11)
        system = fs_system()
        starts = np.random.default_rng(2).uniform(0.05, 0.5, (5, 4))
        ens = system.run_ensemble(starts, max_steps=600,
                                  structural=plan)
        for m in range(5):
            traj = system.run(starts[m], max_steps=600, structural=plan,
                              fault_member=m)
            assert np.array_equal(ens.finals[m], traj.final), m
        # jitter is per-member: not every member opens at the same step
        opens = {e.member: e.step for e in ens.structural_events
                 if e.kind == "degrade"}
        assert len(opens) == 5
        assert len(set(opens.values())) > 1

    def test_resolve_is_idempotent_per_step(self):
        plan = demo_plan()
        state = plan.start(fs_system())
        state.resolve(30)
        state.resolve(30)
        assert len(state.events) == 1

    def test_views_are_cached_per_damage_signature(self):
        plan = StructuralFaultPlan(injectors=(
            CapacityDegradation("g0", factor=0.5, start=0, duration=5,
                                period=10),))
        state = plan.start(fs_system())
        first = state.resolve(1)
        again = state.resolve(12)  # second window, same damage
        assert first.network is again.network
        assert first.scheme is again.scheme

    def test_plan_describe_and_to_dict(self):
        plan = demo_plan()
        assert "seed=3" in plan.describe()
        d = plan.to_dict()
        assert d["seed"] == 3
        assert [inj["kind"] for inj in d["injectors"]] == \
            ["degrade", "blackhole"]
        assert StructuralFaultPlan().describe() == "no structural faults"


class TestAdversaries:
    def test_zoo_membership(self):
        honest = TargetRule(eta=0.1, beta=0.5)
        zoo = [BlasterRule(), PinnedRateRule(), SawtoothRule()]
        assert all(is_adversary(a) for a in zoo)
        assert not is_adversary(honest)
        idx = honest_indices([honest, zoo[0], honest, zoo[1]])
        assert list(idx) == [0, 2]

    @pytest.mark.parametrize("build", [
        lambda: BlasterRule(increment=0.0),
        lambda: BlasterRule(cap=-1.0),
        lambda: PinnedRateRule(rate=0.0),
        lambda: SawtoothRule(low=2.0, high=1.0),
        lambda: SawtoothRule(increase=float("inf")),
    ])
    def test_bad_parameters_raise(self, build):
        with pytest.raises(ChaosError):
            build()

    @pytest.mark.parametrize("rule", [
        BlasterRule(increment=0.2, cap=1.5), PinnedRateRule(rate=0.8),
        SawtoothRule(low=0.2, high=1.0, increase=0.3)])
    def test_delta_batch_matches_scalar(self, rule):
        rates = np.array([[0.1, 0.9, 1.4], [2.0, 0.5, 1.0]])
        got = rule.delta_batch(rates, np.zeros_like(rates),
                               np.ones_like(rates))
        want = [[rule.delta(r, 0.0, 1.0) for r in row] for row in rates]
        assert np.allclose(got, want, rtol=0, atol=0)

    def test_blaster_pins_at_cap(self):
        system = FlowControlSystem(
            single_gateway(2, mu=1.0), FairShare(), LinearSaturating(),
            [TargetRule(eta=0.1, beta=0.5),
             BlasterRule(increment=0.5, cap=2.0)],
            style=FeedbackStyle.INDIVIDUAL)
        traj = system.run(np.array([0.1, 0.1]), max_steps=4000)
        assert traj.final[1] == pytest.approx(2.0)


class TestFloorMonitor:
    def mixed(self, discipline):
        rules = [TargetRule(eta=0.1, beta=0.5)] * 3 + \
            [BlasterRule(increment=0.2, cap=5.0)]
        net = single_gateway(4, mu=1.0)
        system = FlowControlSystem(net, discipline, LinearSaturating(),
                                   rules,
                                   style=FeedbackStyle.INDIVIDUAL)
        final = system.run(np.full(4, 0.1), max_steps=6000).final
        return net, rules, final

    def test_fair_share_holds_fifo_violates(self):
        net, rules, final = self.mixed(FairShare())
        fs = check_robustness_floor(net, LinearSaturating(), rules,
                                    final)
        assert fs.holds and fs.worst >= 1.0 - 1e-5
        assert list(fs.honest) == [0, 1, 2]
        net, rules, final = self.mixed(Fifo())
        fifo = check_robustness_floor(net, LinearSaturating(), rules,
                                      final)
        assert not fifo.holds
        assert fifo.worst < 0.5
        assert "VIOLATED" in fifo.describe()

    def test_degraded_network_shrinks_the_floor(self):
        net = single_gateway(4, mu=1.0)
        rules = [TargetRule(eta=0.1, beta=0.5)] * 3 + [BlasterRule()]
        intact = check_robustness_floor(
            net, LinearSaturating(), rules, np.full(4, 0.2))
        degraded = check_robustness_floor(
            net.with_mu_factors({"g0": 0.5}), LinearSaturating(), rules,
            np.full(4, 0.2))
        assert np.allclose(degraded.floors, 0.5 * intact.floors)

    def test_all_adversaries_is_an_error(self):
        net = single_gateway(2, mu=1.0)
        with pytest.raises(ChaosError, match="every connection"):
            check_robustness_floor(net, LinearSaturating(),
                                   [BlasterRule(), PinnedRateRule()],
                                   np.array([1.0, 1.0]))

    def test_non_tsi_honest_rule_needs_explicit_rho(self):
        net = single_gateway(2, mu=1.0)
        rules = [RcpSourceRule(), BlasterRule()]
        with pytest.raises(ChaosError, match="not TSI"):
            check_robustness_floor(net, LinearSaturating(), rules,
                                   np.array([0.4, 0.4]))
        check = check_robustness_floor(net, LinearSaturating(), rules,
                                       np.array([0.4, 0.4]),
                                       rho_ss=(0.5, 0.5))
        assert check.honest.size == 1

    def test_shape_mismatches_raise(self):
        net = single_gateway(2, mu=1.0)
        rules = [TargetRule(eta=0.1, beta=0.5), BlasterRule()]
        with pytest.raises(ChaosError, match="one rate per"):
            check_robustness_floor(net, LinearSaturating(), rules,
                                   np.array([0.1]))
        with pytest.raises(ChaosError, match="one rule per"):
            check_robustness_floor(net, LinearSaturating(), rules[:1],
                                   np.array([0.1, 0.1]))


def chaos_spec(discipline="fair-share", adversaries=(), structural=None,
               n=4, **overrides):
    base = dict(
        name="chaos-unit",
        gateways=(GatewaySpec("g0", 1.0),),
        connections=tuple(ConnectionSpec(f"c{i}", ("g0",))
                          for i in range(n)),
        discipline=discipline,
        signal=SignalSpec(),
        style="individual",
        rules=(RuleSpec("target", {"eta": 0.1, "beta": 0.5}),) * n,
        initial_rates=(0.1,) * n,
        max_steps=6000,
        seed=9,
        adversaries=tuple(adversaries),
        structural_plan=structural,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioChaosGrammar:
    def test_adversary_spec_round_trips(self):
        adv = AdversarySpec(2, "blaster",
                            {"increment": 0.2, "cap": 3.0})
        assert AdversarySpec.from_dict(adv.to_dict()) == adv
        assert isinstance(adv.build(), BlasterRule)

    def test_unknown_adversary_kind(self):
        with pytest.raises(ScenarioError, match="unknown adversary"):
            AdversarySpec(0, "ddos")

    def test_adversary_index_validated_against_topology(self):
        with pytest.raises(ScenarioError, match="index"):
            chaos_spec(adversaries=(AdversarySpec(4),))
        with pytest.raises(ScenarioError, match="duplicate"):
            chaos_spec(adversaries=(AdversarySpec(1), AdversarySpec(1)))

    def test_structural_plan_round_trips(self):
        plan = StructuralPlanSpec(seed=7, injectors=(
            StructuralInjectorSpec("degrade",
                                   {"gateway": "g0", "factor": 0.5,
                                    "start": 10, "duration": 5}),
            StructuralInjectorSpec("blackhole",
                                   {"gateway": "g0", "start": 30,
                                    "duration": 4})))
        assert StructuralPlanSpec.from_dict(plan.to_dict()) == plan
        built = plan.build()
        assert built.seed == 7
        assert [inj.kind for inj in built.injectors] == \
            ["degrade", "blackhole"]

    def test_structural_injector_gateway_must_exist(self):
        plan = StructuralPlanSpec(injectors=(
            StructuralInjectorSpec("blackhole",
                                   {"gateway": "gX", "start": 0,
                                    "duration": 2}),))
        with pytest.raises(ScenarioError, match="gX"):
            chaos_spec(structural=plan)

    def test_spec_json_round_trips_with_chaos_fields(self):
        spec = chaos_spec(
            adversaries=(AdversarySpec(3, "sawtooth",
                                       {"low": 0.1, "high": 1.0,
                                        "increase": 0.1}),),
            structural=StructuralPlanSpec(seed=2, injectors=(
                StructuralInjectorSpec("degrade",
                                       {"gateway": "g0", "factor": 0.7,
                                        "start": 5, "duration": 9}),)))
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.chaotic
        assert again.adversary_indices() == (3,)
        assert again.honest_indices() == (0, 1, 2)

    def test_build_overrides_adversary_rules_only(self):
        spec = chaos_spec(adversaries=(AdversarySpec(1, "pinned",
                                                     {"rate": 0.9}),))
        system = spec.build()
        assert isinstance(system.rules[1], PinnedRateRule)
        assert isinstance(system.rules[0], TargetRule)
        # the spec's honest rules tuple is untouched
        assert all(r.kind == "target" for r in spec.rules)

    def test_drop_connection_remaps_adversaries(self):
        spec = chaos_spec(adversaries=(AdversarySpec(2),))
        dropped = spec.drop_connection(1)
        assert dropped.adversary_indices() == (1,)
        assert spec.drop_connection(2).adversaries == ()

    def test_controller_excludes_chaos(self):
        base = dict(
            name="rcp",
            gateways=(GatewaySpec("g0", 1.0),),
            connections=(ConnectionSpec("c0", ("g0",)),
                         ConnectionSpec("c1", ("g0",))),
            discipline="fifo",
            signal=SignalSpec(),
            style="individual",
            rules=(RuleSpec("rcp-source", {}),) * 2,
            initial_rates=(0.1, 0.1),
            max_steps=500,
            seed=1,
        )
        from repro.scenarios import ControllerSpec
        ctrl = ControllerSpec("rcp", {"alpha": 0.5, "beta": 0.05})
        with pytest.raises(ScenarioError, match="structural plan"):
            ScenarioSpec(controller=ctrl, structural_plan=
                         StructuralPlanSpec(injectors=(
                             StructuralInjectorSpec(
                                 "blackhole", {"gateway": "g0",
                                               "start": 0,
                                               "duration": 2}),)),
                         **base)
        with pytest.raises(ScenarioError, match="rcp-source"):
            ScenarioSpec(controller=ctrl,
                         adversaries=(AdversarySpec(0),), **base)


class TestAdversarialFloorOracle:
    BLASTER = (AdversarySpec(3, "blaster",
                             {"increment": 0.2, "cap": 5.0}),)

    def test_green_on_fair_share(self):
        ctx = ScenarioContext(chaos_spec(adversaries=self.BLASTER))
        result = run_oracle("adversarial-floor", ctx)
        assert result.applicable and result.passed

    def test_fires_on_fifo_with_one_blaster(self):
        # proportional-target converges under FIFO where the additive
        # target rule oscillates, so the oracle stays applicable
        ctx = ScenarioContext(chaos_spec(
            "fifo", adversaries=self.BLASTER,
            rules=(RuleSpec("proportional-target",
                            {"eta": 0.1, "beta": 0.5}),) * 4))
        result = run_oracle("adversarial-floor", ctx)
        assert result.applicable and not result.passed
        assert "VIOLATED" in result.detail

    def test_inapplicable_without_adversaries(self):
        result = run_oracle("adversarial-floor",
                            ScenarioContext(chaos_spec()))
        assert not result.applicable

    def test_theorem_oracles_step_aside_on_chaotic_specs(self):
        ctx = ScenarioContext(chaos_spec(adversaries=self.BLASTER))
        for name in ("tsi", "fairness-manifold", "fs-floor",
                     "steady-signal"):
            result = run_oracle(name, ctx)
            assert not result.applicable, name

    def test_fault_determinism_covers_structural_plans(self):
        plan = StructuralPlanSpec(seed=4, injectors=(
            StructuralInjectorSpec("degrade",
                                   {"gateway": "g0", "factor": 0.5,
                                    "start": 20, "duration": 15}),))
        ctx = ScenarioContext(chaos_spec(structural=plan,
                                         max_steps=400))
        result = run_oracle("fault-determinism", ctx)
        assert result.applicable and result.passed
        assert "structural transitions" in result.detail


class TestControllerExclusionGuards:
    def controlled(self):
        return FlowControlSystem(
            single_gateway(2, mu=2.0), Fifo(), LinearSaturating(),
            RcpSourceRule(), style=FeedbackStyle.INDIVIDUAL,
            controller=RcpController(alpha=0.5, beta=0.05))

    STRUCTURAL = StructuralFaultPlan(
        injectors=(GatewayBlackhole("g0", start=0, duration=2),))
    FAULTS = FaultPlan(injectors=(SignalLoss(0.5),))

    def test_structural_with_controller_raises_scalar_and_batch(self):
        system = self.controlled()
        with pytest.raises(SweepError, match="structural"):
            system.run(np.array([0.1, 0.1]), max_steps=50,
                       structural=self.STRUCTURAL)
        with pytest.raises(SweepError, match="structural"):
            system.run_ensemble(np.full((3, 2), 0.1), max_steps=50,
                                structural=self.STRUCTURAL)

    def test_faults_with_controller_raises_scalar_and_batch(self):
        system = self.controlled()
        with pytest.raises(SweepError, match="fault"):
            system.run(np.array([0.1, 0.1]), max_steps=50,
                       faults=self.FAULTS)
        with pytest.raises(SweepError, match="fault"):
            system.run_ensemble(np.full((3, 2), 0.1), max_steps=50,
                                faults=self.FAULTS)

    def test_empty_plans_stay_legal_with_controller(self):
        system = self.controlled()
        traj = system.run(np.array([0.1, 0.1]), max_steps=50,
                          structural=StructuralFaultPlan(),
                          faults=FaultPlan())
        assert traj.structural_events is None


class TestRetryBackoff:
    def test_schedule_is_reproducible_from_seed(self):
        first = [_retry_backoff(0.5, r, [7, r]) for r in (1, 2, 3)]
        again = [_retry_backoff(0.5, r, [7, r]) for r in (1, 2, 3)]
        assert first == again
        other = [_retry_backoff(0.5, r, [8, r]) for r in (1, 2, 3)]
        assert first != other

    def test_exponential_base_with_bounded_jitter(self):
        for r in (1, 2, 3):
            base = 0.5 * 2 ** (r - 1)
            value = _retry_backoff(0.5, r, [0, r])
            assert 0.5 * base <= value < 1.5 * base

    def test_zero_backoff_never_sleeps(self):
        assert _retry_backoff(0.0, 3, [0, 3]) == 0.0

    def test_sweep_sleeps_identically_for_the_same_seed(
            self, monkeypatch):
        from tests.unit.test_resilient_sweep import _patched_submit

        def run(seed):
            sleeps = []
            with pytest.MonkeyPatch.context() as mp:
                _patched_submit(
                    mp, lambda first, attempt:
                        OSError("flaky") if attempt == 0 else None)
                mp.setattr(parallel_mod.time, "sleep", sleeps.append)
                out = sweep(_square, list(range(8)), workers=2,
                            executor="thread", retries=2, backoff=0.25,
                            seed=seed)
            assert out == [x * x for x in range(8)]
            return sleeps

        assert run(3) == run(3)
        assert run(3) != run(4)


def _square(x):
    return x * x


def _orch_job(name="j", grid=tuple(range(8)), **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("shards", 2)
    return SweepJob(name, _square, list(grid), **kwargs)


def _poison(x):
    if x == 5:
        raise ValueError("poison cell")
    return x * x


class TestOrchestratorChaosHardening:
    def test_v1_state_migrates_forward(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(_orch_job())
        path = tmp_path / "jobs" / "j" / "state.json"
        state = json.loads(path.read_text())
        state["schema"] = "repro.orchestrator-job/v1"
        state.pop("quarantined")
        state.pop("attempts")
        path.write_text(json.dumps(state))
        resumed = Orchestrator(tmp_path)
        assert resumed.submit(_orch_job())["quarantined"] == {}
        assert resumed.run_job("j") == [x * x for x in range(8)]
        assert json.loads(path.read_text())["schema"] == \
            ORCHESTRATOR_SCHEMA

    def test_unknown_schema_is_rejected_by_name(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(_orch_job())
        path = tmp_path / "jobs" / "j" / "state.json"
        state = json.loads(path.read_text())
        state["schema"] = "repro.orchestrator-job/v99"
        path.write_text(json.dumps(state))
        with pytest.raises(SweepError) as err:
            Orchestrator(tmp_path).submit(_orch_job())
        assert "repro.orchestrator-job/v99" in str(err.value)
        assert ORCHESTRATOR_SCHEMA in str(err.value)

    def test_live_lease_blocks_and_requeues(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(_orch_job())
        lease = tmp_path / "jobs" / "j" / "leases" / "shard_00000.json"
        lease.parent.mkdir(parents=True)
        lease.write_text(json.dumps(
            {"owner": "other-worker", "pid": os.getpid(),
             "acquired_at": time.time(),
             "expires_at": time.time() + 3600}))
        with pytest.raises(SweepError, match="leased by another"):
            orch.run_job("j")
        assert orch.status("j")["status"] == "queued"
        assert orch.status("j")["completed_shards"] == [1]

    def test_dead_owner_lease_is_reclaimed(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(_orch_job())
        lease = tmp_path / "jobs" / "j" / "leases" / "shard_00000.json"
        lease.parent.mkdir(parents=True)
        lease.write_text(json.dumps(
            {"owner": "ghost", "pid": 2 ** 22 + 12345,
             "acquired_at": time.time(),
             "expires_at": time.time() + 3600}))
        assert orch.run_job("j") == [x * x for x in range(8)]

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(_orch_job())
        lease = tmp_path / "jobs" / "j" / "leases" / "shard_00000.json"
        lease.parent.mkdir(parents=True)
        lease.write_text("{broken")
        assert orch.run_job("j") == [x * x for x in range(8)]

    def test_poison_shard_is_quarantined_and_rest_complete(
            self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(orch_mod.time, "sleep", sleeps.append)
        orch = Orchestrator(tmp_path)
        orch.submit(SweepJob("j", _poison, list(range(8)), shards=4,
                             executor="serial", retries=0,
                             max_attempts=3, backoff=0.25, seed=5))
        with pytest.raises(SweepError, match="quarantined"):
            orch.run_job("j")
        state = orch.status("j")
        assert state["status"] == "failed"
        assert list(state["quarantined"]) == ["2"]  # items 4-5
        assert state["completed_shards"] == [0, 1, 3]
        assert len(sleeps) == 2  # two retry sleeps for the poison shard
        # seeded backoff: the schedule replays exactly
        assert sleeps == [_retry_backoff(0.25, a - 1, [5, 2, a])
                          for a in (2, 3)]

    def test_resubmission_clears_quarantine_and_finishes(self, tmp_path):
        orch = Orchestrator(tmp_path)
        orch.submit(SweepJob("j", _poison, list(range(8)), shards=4,
                             executor="serial", retries=0,
                             max_attempts=2, backoff=0.0))
        with pytest.raises(SweepError, match="quarantined"):
            orch.run_job("j")
        healed = Orchestrator(tmp_path)
        state = healed.submit(_orch_job(grid=range(8), shards=4))
        assert state["quarantined"] == {}
        assert healed.run_job("j") == [x * x for x in range(8)]

    @pytest.mark.parametrize("kwargs", [
        {"seed": -1}, {"max_attempts": 0}, {"lease_ttl": 0.0}])
    def test_chaos_knob_validation(self, kwargs):
        with pytest.raises(SweepError):
            SweepJob("j", _square, [1], **kwargs)


import os  # noqa: E402  (used in lease fixtures above)
