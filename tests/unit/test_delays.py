"""Unit tests for the round-trip delay model."""

import math

import numpy as np
import pytest

from repro.core.delays import per_gateway_delays, round_trip_delays
from repro.core.fifo import Fifo
from repro.core.topology import (Connection, Gateway, Network,
                                 single_gateway, two_gateway_shared)


class TestRoundTripDelays:
    def test_single_connection_closed_form(self):
        # d = l + 1/(mu - r), the form in the proof of Theorem 1.
        net = single_gateway(1, mu=2.0, latency=0.3)
        d = round_trip_delays(net, Fifo(), np.array([1.0]))
        assert d[0] == pytest.approx(0.3 + 1.0 / (2.0 - 1.0))

    def test_latency_adds_along_path(self):
        net = Network(
            [Gateway("a", 10.0, 1.0), Gateway("b", 10.0, 2.0)],
            [Connection("c", ("a", "b"))])
        d = round_trip_delays(net, Fifo(), np.array([0.0]))
        # Empty network: only latencies + probe service times 1/mu each.
        assert d[0] == pytest.approx(3.0 + 0.2, rel=1e-3)

    def test_overload_gives_inf(self):
        net = single_gateway(2, mu=1.0)
        d = round_trip_delays(net, Fifo(), np.array([0.7, 0.7]))
        assert math.isinf(d[0]) and math.isinf(d[1])

    def test_two_gateway_long_sees_both(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=1.0)
        rates = np.array([0.2, 0.2, 0.2])
        per_gw = per_gateway_delays(net, Fifo(), rates)
        d = round_trip_delays(net, Fifo(), rates)
        assert d[0] == pytest.approx(per_gw["ga"][0] + per_gw["gb"][0])

    def test_per_gateway_keys(self):
        net = two_gateway_shared()
        per_gw = per_gateway_delays(net, Fifo(), np.array([0.1, 0.1, 0.1]))
        assert set(per_gw) == {"ga", "gb"}
        assert per_gw["ga"].shape == (2,)
