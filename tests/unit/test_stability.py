"""Unit tests for the stability analysis toolkit."""

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.stability import (analyze, eigenvalues,
                                  is_systemically_stable,
                                  is_triangular_in_rate_order,
                                  is_unilaterally_stable, jacobian,
                                  spectral_radius, transverse_eigenvalues,
                                  transverse_spectral_radius,
                                  triangularity_defect, unilateral_margins,
                                  zero_sum_tangent_basis)
from repro.core.steadystate import fair_steady_state
from repro.core.topology import single_gateway
from repro.errors import RateVectorError


def _aggregate_system(n, eta=0.3):
    net = single_gateway(n, mu=1.0)
    return FlowControlSystem(net, Fifo(), LinearSaturating(),
                             TargetRule(eta=eta, beta=0.5),
                             style=FeedbackStyle.AGGREGATE)


class TestJacobian:
    def test_closed_form_aggregate(self):
        # b = sum(r) at mu=1 with the linear signal, so
        # DF = I - eta * ones.
        eta, n = 0.3, 3
        system = _aggregate_system(n, eta)
        fair = fair_steady_state(single_gateway(n), 0.5)
        df = jacobian(system, fair)
        expected = np.eye(n) - eta * np.ones((n, n))
        assert np.allclose(df, expected, atol=1e-5)

    def test_schemes_agree_on_smooth_point(self):
        system = _aggregate_system(3)
        fair = fair_steady_state(single_gateway(3), 0.5)
        df_c = jacobian(system, fair, scheme="central")
        df_f = jacobian(system, fair, scheme="forward")
        df_b = jacobian(system, fair, scheme="backward")
        assert np.allclose(df_c, df_f, atol=1e-4)
        assert np.allclose(df_c, df_b, atol=1e-4)

    def test_unknown_scheme(self):
        system = _aggregate_system(2)
        with pytest.raises(RateVectorError):
            jacobian(system, [0.2, 0.2], scheme="sideways")

    def test_zero_rate_uses_forward(self):
        system = _aggregate_system(2)
        df = jacobian(system, np.array([0.0, 0.4]))
        assert np.all(np.isfinite(df))


class TestSpectra:
    def test_eigenvalues_sorted_by_modulus(self):
        m = np.diag([0.1, -0.9, 0.5])
        eig = eigenvalues(m)
        assert abs(eig[0]) == pytest.approx(0.9)
        assert abs(eig[-1]) == pytest.approx(0.1)

    def test_spectral_radius(self):
        assert spectral_radius(np.diag([0.2, -1.4])) == pytest.approx(1.4)

    def test_unilateral_margins(self):
        m = np.array([[0.5, 9.0], [9.0, -0.7]])
        assert np.allclose(unilateral_margins(m), [0.5, 0.7])

    def test_stability_predicates(self):
        stable = np.diag([0.5, -0.5])
        unstable = np.diag([0.5, -1.5])
        assert is_unilaterally_stable(stable)
        assert is_systemically_stable(stable)
        assert not is_unilaterally_stable(unstable)
        assert not is_systemically_stable(unstable)

    def test_unilateral_ok_systemic_not(self):
        m = np.array([[0.7, 0.0], [5.0, 0.7]])
        # Triangular: eigenvalues are the diagonal — actually stable.
        assert is_systemically_stable(m)
        m2 = np.array([[0.7, 2.0], [2.0, 0.7]])  # eig 2.7, -1.3
        assert is_unilaterally_stable(m2)
        assert not is_systemically_stable(m2)


class TestTransverse:
    def test_zero_sum_basis_properties(self):
        basis = zero_sum_tangent_basis(5)
        assert basis.shape == (5, 4)
        assert np.allclose(basis.sum(axis=0), 0.0, atol=1e-12)
        assert np.allclose(basis.T @ basis, np.eye(4), atol=1e-12)

    def test_basis_needs_two(self):
        with pytest.raises(RateVectorError):
            zero_sum_tangent_basis(1)

    def test_aggregate_transverse_is_1_minus_eta_n(self):
        eta, n = 0.3, 6
        system = _aggregate_system(n, eta)
        fair = fair_steady_state(single_gateway(n), 0.5)
        df = jacobian(system, fair)
        t = transverse_spectral_radius(df, zero_sum_tangent_basis(n))
        assert t == pytest.approx(abs(1 - eta * n), abs=1e-4)

    def test_transverse_eigenvalue_count(self):
        df = np.eye(4)
        eig = transverse_eigenvalues(df, zero_sum_tangent_basis(4))
        assert eig.shape == (1,)

    def test_bad_basis_shape(self):
        with pytest.raises(RateVectorError):
            transverse_eigenvalues(np.eye(3), np.eye(3))


class TestTriangularity:
    def test_lower_triangular_passes(self):
        rates = [0.1, 0.2, 0.3]
        df = np.tril(np.full((3, 3), 0.5))
        assert triangularity_defect(df, rates) == 0.0
        assert is_triangular_in_rate_order(df, rates)

    def test_upper_entry_detected(self):
        rates = [0.1, 0.2, 0.3]
        df = np.tril(np.full((3, 3), 0.5))
        df[0, 2] = 0.3
        assert triangularity_defect(df, rates) == pytest.approx(0.3)

    def test_rate_order_not_index_order(self):
        # The matrix must be permuted into increasing-rate order first.
        rates = [0.3, 0.1]  # connection 1 is the smaller
        df = np.array([[0.5, 0.0],
                       [0.4, 0.5]])  # DF[1,0] != 0: small depends on big
        assert triangularity_defect(df, rates) == pytest.approx(0.4)

    def test_ties_skipped(self):
        rates = [0.2, 0.2]
        df = np.array([[0.5, 0.9], [0.9, 0.5]])
        assert triangularity_defect(df, rates) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(RateVectorError):
            triangularity_defect(np.eye(3), [0.1, 0.2])


class TestAnalyze:
    def test_report_fields(self):
        system = FlowControlSystem(single_gateway(3), FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=0.1, beta=0.5))
        fair = fair_steady_state(single_gateway(3), 0.5)
        report = analyze(system, fair)
        assert report.df.shape == (3, 3)
        assert report.unilaterally_stable
        assert report.unilateral_implies_systemic

    def test_unilateral_implies_systemic_flags_violation(self):
        system = _aggregate_system(12, eta=0.3)  # 1 - 3.6 unstable
        fair = fair_steady_state(single_gateway(12), 0.5)
        report = analyze(system, fair)
        assert report.unilaterally_stable
        assert not report.systemically_stable
        assert not report.unilateral_implies_systemic
