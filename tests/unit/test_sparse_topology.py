"""Unit tests for the sparse topology layer and the large-N kernels.

The CSR index arrays (:class:`~repro.core.topology.TopologyCSR`) are a
*layout* change, not a semantic one: every lookup they answer must be
bit-identical to the historical ``gamma(i)``/``Gamma(a)`` scans.  The
sorted O(n log n) kernels behind ``method="sorted"`` may differ from
the dense O(n^2) reference only in floating-point summation order
(<= 1e-12 relative), and the scalar and batch paths switch kernels at
the same ``SPARSE_MIN_N`` so their exact-identity contract survives
the threshold.
"""

import math

import numpy as np
import pytest

from repro.core.delays import round_trip_delays, round_trip_delays_batch
from repro.core.fairshare import (FairShare, cumulative_loads,
                                  cumulative_loads_batch)
from repro.core.fifo import Fifo
from repro.core.math_utils import SPARSE_MIN_N, pick_kernel
from repro.core.signals import (FeedbackScheme, FeedbackStyle,
                                LinearSaturating, individual_congestion,
                                individual_congestion_batch)
from repro.core.topology import (TopologyCSR, parking_lot, random_network,
                                 single_gateway)
from repro.errors import RateVectorError

NETWORKS = [
    ("single-gateway", single_gateway(5, mu=1.0)),
    ("parking-lot", parking_lot(3, mu=1.2, latency=0.3)),
    ("random", random_network(6, 40, seed=13)),
]


class TestCSRLayout:
    @pytest.mark.parametrize("label,net", NETWORKS,
                             ids=[l for l, _ in NETWORKS])
    def test_members_match_connections_at(self, label, net):
        csr = net.csr
        assert isinstance(csr, TopologyCSR)
        for a, gname in enumerate(csr.gateway_names):
            assert list(csr.members(a)) == \
                list(net.connections_at(gname))

    @pytest.mark.parametrize("label,net", NETWORKS,
                             ids=[l for l, _ in NETWORKS])
    def test_routes_match_gamma_in_path_order(self, label, net):
        csr = net.csr
        for i in range(net.num_connections):
            names = [csr.gateway_names[a] for a in csr.route(i)]
            assert tuple(names) == net.gamma(i)

    @pytest.mark.parametrize("label,net", NETWORKS,
                             ids=[l for l, _ in NETWORKS])
    def test_positions_match_index_scans(self, label, net):
        # positions(i) precomputes what the historical code found with
        # list(Gamma(a)).index(i) — they must agree everywhere.
        csr = net.csr
        for i in range(net.num_connections):
            for a, pos in zip(csr.route(i), csr.positions(i)):
                gname = csr.gateway_names[a]
                assert list(net.connections_at(gname)).index(i) == pos

    @pytest.mark.parametrize("label,net", NETWORKS,
                             ids=[l for l, _ in NETWORKS])
    def test_path_latency_vector_bit_identical(self, label, net):
        csr = net.csr
        expected = np.array([net.path_latency(i)
                             for i in range(net.num_connections)])
        assert np.array_equal(csr.path_latency, expected)

    def test_csr_is_cached(self):
        net = single_gateway(4)
        assert net.csr is net.csr


class TestKernelSelection:
    def test_auto_switches_at_threshold(self):
        assert pick_kernel("auto", SPARSE_MIN_N - 1) == "dense"
        assert pick_kernel("auto", SPARSE_MIN_N) == "sorted"
        assert pick_kernel("auto", SPARSE_MIN_N,
                           large="sparse") == "sparse"

    def test_forced_methods_pass_through(self):
        assert pick_kernel("dense", 10**6) == "dense"
        assert pick_kernel("sorted", 2) == "sorted"

    def test_unknown_method_raises(self):
        with pytest.raises(RateVectorError, match="method"):
            pick_kernel("fast", 10)


class TestSortedKernels:
    @pytest.mark.parametrize("n", [3, 17, SPARSE_MIN_N, 257])
    def test_cumulative_loads_dense_vs_sorted(self, n):
        rng = np.random.default_rng(n)
        rates = rng.uniform(0.0, 0.4, size=n)
        rates[: n // 4] = rates[0]  # ties
        rates[-1] = 0.0             # idle connection
        dense = cumulative_loads(rates, mu=1.1, method="dense")
        fast = cumulative_loads(rates, mu=1.1, method="sorted")
        np.testing.assert_allclose(fast, dense, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n", [3, 17, SPARSE_MIN_N, 257])
    def test_cumulative_loads_batch_dense_vs_sorted(self, n):
        rng = np.random.default_rng(100 + n)
        rates = rng.uniform(0.0, 0.4, size=(5, n))
        dense = cumulative_loads_batch(rates, mu=0.9, method="dense")
        fast = cumulative_loads_batch(rates, mu=0.9, method="sorted")
        np.testing.assert_allclose(fast, dense, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n", [3, 17, SPARSE_MIN_N, 257])
    def test_individual_congestion_dense_vs_sorted(self, n):
        rng = np.random.default_rng(200 + n)
        queues = rng.uniform(0.0, 5.0, size=n)
        queues[: n // 5] = queues[0]
        dense = individual_congestion(queues, method="dense")
        fast = individual_congestion(queues, method="sorted")
        np.testing.assert_allclose(fast, dense, rtol=1e-12, atol=1e-12)

    def test_individual_congestion_sorted_handles_inf(self):
        # Overloaded entries: the connection's own infinite queue makes
        # its measure inf, while finite-queue connections cap every
        # larger queue at their own length — no inf leakage, no NaN
        # from the inf * 0 corner of the prefix formulation.
        queues = np.array([0.5, math.inf, 1.5, math.inf, 0.0])
        dense = individual_congestion(queues, method="dense")
        fast = individual_congestion(queues, method="sorted")
        assert np.array_equal(np.isinf(dense), np.isinf(fast))
        finite = np.isfinite(dense)
        np.testing.assert_allclose(fast[finite], dense[finite],
                                   rtol=1e-12, atol=1e-12)
        batch = individual_congestion_batch(queues[None, :],
                                            method="sorted")[0]
        assert np.array_equal(np.isinf(batch), np.isinf(fast))

    @pytest.mark.parametrize("n", [SPARSE_MIN_N - 1, SPARSE_MIN_N,
                                   SPARSE_MIN_N + 1])
    def test_fair_share_scalar_batch_identity_across_threshold(self, n):
        # Scalar and batch switch kernels at the same n, so the
        # bit-identity contract holds on both sides of the boundary.
        rng = np.random.default_rng(300 + n)
        rates = rng.uniform(0.0, 1.5 / n, size=n)
        fs = FairShare()
        scalar = fs.queue_lengths(rates, mu=1.0)
        batch = fs.queue_lengths_batch(rates[None, :], mu=1.0)[0]
        assert np.array_equal(scalar, batch)


class TestSparseAddressing:
    @pytest.mark.parametrize("style", [FeedbackStyle.INDIVIDUAL,
                                       FeedbackStyle.AGGREGATE])
    def test_signals_dense_vs_sparse(self, style):
        net = random_network(6, 40, seed=13)
        scheme = FeedbackScheme(net, FairShare(), LinearSaturating(),
                                style)
        rng = np.random.default_rng(17)
        rates = rng.uniform(0.0, 0.05, size=net.num_connections)
        dense = scheme.signals(rates, method="dense")
        sparse = scheme.signals(rates, method="sparse")
        np.testing.assert_allclose(sparse, dense, rtol=1e-12,
                                   atol=1e-12)

    def test_signals_batch_rows_match_dense(self):
        net = random_network(5, 24, seed=3)
        scheme = FeedbackScheme(net, Fifo(), LinearSaturating(),
                                FeedbackStyle.INDIVIDUAL)
        rng = np.random.default_rng(23)
        batch = rng.uniform(0.0, 0.06, size=(4, net.num_connections))
        out = scheme.signals_batch(batch)
        for m in range(batch.shape[0]):
            np.testing.assert_allclose(
                out[m], scheme.signals(batch[m], method="dense"),
                rtol=1e-12, atol=1e-12)

    def test_delays_dense_vs_sparse(self):
        net = random_network(6, 40, seed=13)
        rng = np.random.default_rng(29)
        rates = rng.uniform(0.0, 0.05, size=net.num_connections)
        dense = round_trip_delays(net, Fifo(), rates, method="dense")
        sparse = round_trip_delays(net, Fifo(), rates, method="sparse")
        np.testing.assert_allclose(sparse, dense, rtol=1e-12,
                                   atol=1e-12)

    def test_delays_batch_rows_match_dense(self):
        net = parking_lot(3, mu=1.2, latency=0.3)
        rng = np.random.default_rng(31)
        batch = rng.uniform(0.0, 0.2, size=(5, net.num_connections))
        out = round_trip_delays_batch(net, FairShare(), batch)
        for m in range(batch.shape[0]):
            np.testing.assert_allclose(
                out[m],
                round_trip_delays(net, FairShare(), batch[m],
                                  method="dense"),
                rtol=1e-12, atol=1e-12)

    def test_large_n_auto_path_matches_dense_reference(self):
        # Above the threshold "auto" takes the sparse/sorted route;
        # the dense reference is still available by forcing it.
        n = SPARSE_MIN_N * 2
        net = single_gateway(n, mu=float(n))
        scheme = FeedbackScheme(net, FairShare(), LinearSaturating(),
                                FeedbackStyle.INDIVIDUAL)
        rng = np.random.default_rng(37)
        rates = rng.uniform(0.0, 0.5, size=n)
        np.testing.assert_allclose(
            scheme.signals(rates),
            scheme.signals(rates, method="dense"),
            rtol=1e-12, atol=1e-12)
