"""Integration tests: finite buffers, drop policies, implicit feedback."""

import numpy as np
import pytest

from repro.core.topology import single_gateway
from repro.core.ratecontrol import BinaryAimdRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.errors import SimulationError
from repro.simulation.closed_loop import run_closed_loop
from repro.simulation.network_sim import NetworkSimulation
from repro.simulation.validation import (mm1k_blocking_probability,
                                         mm1k_mean_queue,
                                         validate_finite_buffer)


class TestMM1KFormulas:
    def test_blocking_limits(self):
        assert mm1k_blocking_probability(0.0, 5) == 0.0
        assert mm1k_blocking_probability(1.0, 4) == pytest.approx(0.2)

    def test_blocking_increases_with_load(self):
        ps = [mm1k_blocking_probability(rho, 6)
              for rho in (0.2, 0.5, 0.9, 1.3)]
        assert all(b > a for a, b in zip(ps, ps[1:]))

    def test_mean_queue_bounded_by_k(self):
        for rho in (0.3, 1.0, 2.0):
            assert 0.0 <= mm1k_mean_queue(rho, 7) <= 7.0

    def test_mean_queue_at_critical_load(self):
        assert mm1k_mean_queue(1.0, 8) == pytest.approx(4.0)

    def test_validation_args(self):
        with pytest.raises(SimulationError):
            mm1k_blocking_probability(0.5, 0)
        with pytest.raises(SimulationError):
            mm1k_mean_queue(-0.1, 3)


class TestDropTailSimulation:
    @pytest.mark.parametrize("rate,k", [(0.5, 5), (0.9, 10), (1.3, 8)])
    def test_matches_mm1k(self, rate, k):
        v = validate_finite_buffer(rate, 1.0, k, horizon=15000.0,
                                   warmup=1000.0, seed=2)
        assert v.drop_error < 0.02
        assert v.queue_relative_error < 0.1

    def test_occupancy_never_exceeds_buffer(self):
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo",
                                seed=5, initial_rates=[0.8, 0.8],
                                buffer_sizes=4)
        for _ in range(50):
            sim.run_for(20.0)
            assert sim.servers["g0"].in_system <= 4

    def test_infinite_buffer_never_drops(self):
        sim = NetworkSimulation(single_gateway(1, mu=1.0), "fifo",
                                seed=5, initial_rates=[0.9])
        sim.run_for(2000.0)
        assert sim.drop_fractions()["g0"][0] == 0.0

    def test_buffer_size_validation(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(single_gateway(1, mu=1.0), "fifo",
                              initial_rates=[0.5], buffer_sizes=0)


class TestLongestQueueDrop:
    def test_hog_bears_the_drops(self):
        # A hog at 1.2 vs a mouse at 0.05: under drop-longest, the
        # mouse should see (almost) no drops.
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo",
                                seed=7, initial_rates=[0.05, 1.2],
                                buffer_sizes=10, drop_policy="longest")
        sim.run_for(500.0)
        sim.reset_statistics()
        sim.run_for(5000.0)
        fractions = sim.drop_fractions()["g0"]
        assert fractions[1] > 0.1          # the hog is dropped heavily
        assert fractions[0] < 0.02         # the mouse barely at all

    def test_drop_tail_punishes_both(self):
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo",
                                seed=7, initial_rates=[0.05, 1.2],
                                buffer_sizes=10, drop_policy="tail")
        sim.run_for(500.0)
        sim.reset_statistics()
        sim.run_for(5000.0)
        fractions = sim.drop_fractions()["g0"]
        # Tail drop hits whoever arrives when full: the mouse suffers
        # a comparable drop *fraction* to the hog.
        assert fractions[0] > 0.05

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(single_gateway(1, mu=1.0), "fifo",
                              initial_rates=[0.5], buffer_sizes=5,
                              drop_policy="random")


class TestImplicitFeedbackLoop:
    def test_drop_loop_requires_buffers(self):
        net = single_gateway(2, mu=1.0)
        with pytest.raises(SimulationError):
            run_closed_loop(net, BinaryAimdRule(), LinearSaturating(),
                            signal_source="drops", n_steps=1,
                            initial_rates=[0.1, 0.1])

    def test_bad_signal_source(self):
        net = single_gateway(2, mu=1.0)
        with pytest.raises(SimulationError):
            run_closed_loop(net, BinaryAimdRule(), LinearSaturating(),
                            signal_source="telepathy", n_steps=1,
                            initial_rates=[0.1, 0.1])

    def test_aimd_over_drop_tail_runs_and_oscillates(self):
        net = single_gateway(2, mu=1.0)
        res = run_closed_loop(
            net, BinaryAimdRule(increase=0.02, decrease=0.5,
                                threshold=0.02),
            LinearSaturating(), style=FeedbackStyle.AGGREGATE,
            discipline_kind="fifo", initial_rates=[0.05, 0.05],
            control_interval=150.0, n_steps=80, seed=11,
            signal_source="drops", buffer_sizes=15)
        totals = res.rate_history[-40:].sum(axis=1)
        assert totals.max() - totals.min() > 0.01   # sawtooth
        assert totals.mean() > 0.4                  # gateway used
