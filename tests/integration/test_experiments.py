"""Integration tests: the experiment registry and (fast variants of)
every experiment's shape checks."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (REGISTRY, ExperimentResult, format_summary,
                               format_table, get, run, to_csv)
from repro.experiments.base import ExperimentResult as BaseResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"T1"} | {f"F{k}" for k in range(1, 15)}
        assert set(REGISTRY) == expected

    def test_get_case_insensitive(self):
        assert get("f5").experiment_id == "F5"

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get("F99")


class TestResultType:
    def test_row_width_checked(self):
        with pytest.raises(ExperimentError):
            ExperimentResult("X", "t", ("a", "b"), [(1,)])

    def test_require_raises_on_failed_check(self):
        res = ExperimentResult("X", "t", ("a",), [(1,)],
                               checks={"bad": False})
        with pytest.raises(ExperimentError):
            res.require()
        assert res.failed_checks() == ["bad"]

    def test_require_passes(self):
        res = ExperimentResult("X", "t", ("a",), [(1,)],
                               checks={"good": True})
        assert res.require() is res


class TestReport:
    def test_format_table(self):
        res = ExperimentResult("X", "demo", ("n", "v"),
                               [(1, 0.5), (2, float("inf"))],
                               checks={"ok": True}, notes=["a note"])
        text = format_table(res)
        assert "demo" in text and "inf" in text and "[PASS] ok" in text
        assert "note: a note" in text

    def test_to_csv(self, tmp_path):
        res = ExperimentResult("X", "demo", ("n", "v"), [(1, 0.5)])
        path = to_csv(res, tmp_path / "out.csv")
        content = path.read_text()
        assert "n,v" in content and "0.5" in content

    def test_format_summary(self):
        good = ExperimentResult("A", "x", ("c",), [(1,)],
                                checks={"ok": True})
        bad = ExperimentResult("B", "y", ("c",), [(1,)],
                               checks={"ok": False})
        text = format_summary([good, bad])
        assert "[OK ] A" in text and "[FAIL] B" in text


class TestExperimentShapes:
    """Fast-parameter runs of each harness; checks must pass."""

    def test_t1(self):
        run("T1").require()

    def test_t1_custom_rates(self):
        res = run("T1", rates=(0.05, 0.1, 0.2), mu=1.0).require()
        assert len(res.rows) == 3

    def test_f1(self):
        run("F1", scales=(0.5, 4.0), latencies=(0.0, 2.0)).require()

    def test_f2(self):
        run("F2", n_connections=4, n_starts=8, seed=3).require()

    def test_f3(self):
        run("F3").require()

    def test_f4(self):
        run("F4", n_networks=2, starts_per_network=2).require()

    def test_f5(self):
        run("F5", n_values=(2, 4, 8, 12)).require()

    def test_f6(self):
        run("F6", gains=(1.0, 2.2, 2.62), transient=2000,
            keep=256).require()

    def test_f7(self):
        run("F7", n_values=(4, 10)).require()

    def test_f8(self):
        run("F8", steps=4000).require()

    def test_f9(self):
        run("F9", steps=40000, condition_trials=60).require()

    def test_f10(self):
        run("F10", n_values=(2, 4, 8), sim_horizon=2000.0).require()

    def test_f11(self):
        run("F11", steps=300, pipes=(20.0, 60.0)).require()

    def test_f12(self):
        run("F12", horizon=8000.0, warmup=800.0, loop_steps=60,
            loop_interval=250.0, tolerance=0.3,
            loop_tolerance=0.3).require()

    def test_f13(self):
        result = run("F13", bandwidths=(1.0, 4.0), latencies=(0.1, 8.0),
                     steps=800).require()
        assert result.columns == ("controller", "grid", "point",
                                  "utilisation", "jain")
        controllers = {row[0] for row in result.rows}
        assert controllers == {"rcp", "tcp-like"}

    def test_f14(self):
        result = run("F14", delays=(0, 2), steps=8000, unstable_n=8,
                     unstable_eta=0.4, unstable_steps=20000).require()
        schedules = {row[0] for row in result.rows}
        assert schedules == {"synchronous", "round-robin", "bernoulli",
                             "mix-clock", "bursty-clock",
                             "round-robin-rescue"}


class TestExtensionShapes:
    """Fast-parameter runs of the X1-X4 extension experiments."""

    def test_x1(self):
        run("X1", n_values=(4, 8)).require()

    def test_x2(self):
        run("X2", gains=(0.05, 0.3), delays=(0, 2)).require()

    def test_x3(self):
        run("X3").require()

    def test_x3_other_weights(self):
        res = run("X3", weights=(1.0, 1.0, 8.0)).require()
        assert len(res.rows) == 6

    def test_x4(self):
        run("X4", horizon=8000.0, warmup=800.0).require()

    def test_extensions_not_in_default_sweep(self):
        from repro.experiments import EXTENSIONS, REGISTRY
        assert set(EXTENSIONS) == {"X1", "X2", "X3", "X4", "X5", "X6",
                                   "X7", "X8"}
        assert not (set(EXTENSIONS) & set(REGISTRY))

    def test_x5(self):
        run("X5", n_steps=80).require()

    def test_x6(self):
        run("X6", steps=2000, loss_rates=(0.0, 0.5)).require()

    def test_x7(self):
        res = run("X7", betas=(0.6, 0.45, 0.35), steps=3000,
                  adversary_counts=(0, 1), mu_factors=(1.0, 0.5),
                  workers=2).require()
        roles = {row[4] for row in res.rows}
        assert roles == {"honest", "adversary"}
        assert any(row[9] > 0 for row in res.rows)  # events recorded

    def test_x8(self):
        res = run("X8", slow_rates=(1.0, 0.25, 0.1),
                  steps=40000).require()
        ratios = [row[1] for row in res.rows]
        assert ratios == [1.0, 4.0, 10.0]
        # Raw steps-to-converge grows monotonically with heterogeneity
        # on this grid, while the steady-state deviations stay flat.
        steps = [row[5] for row in res.rows]
        assert steps == sorted(steps)
