"""Bridging tests: the model's qualitative verdicts re-checked in the
packet simulator (measured, delayed, asynchronous signals).

The analytic experiments (F5, F8, F9) run on the synchronous model.
These tests confirm the same *shapes* survive in the discrete-event
substrate, which is the strongest internal-validity evidence the
reproduction can offer.
"""

import numpy as np
import pytest

from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.simulation.closed_loop import run_closed_loop


class TestHeterogeneityShutdownInPackets:
    """F8's verdict, packet-level: aggregate feedback starves the meek."""

    def test_meek_source_collapses_under_aggregate(self):
        net = single_gateway(2, mu=1.0)
        rules = [TargetRule(eta=0.05, beta=0.6),   # greedy
                 TargetRule(eta=0.05, beta=0.4)]   # meek
        res = run_closed_loop(net, rules, LinearSaturating(),
                              style=FeedbackStyle.AGGREGATE,
                              discipline_kind="fifo",
                              initial_rates=[0.2, 0.2],
                              control_interval=300.0, n_steps=80,
                              seed=19, rate_floor=1e-3)
        final = res.tail_mean_rates(10)
        # The meek source is pinned at the probe floor; the greedy one
        # holds approximately its solo operating point (0.6).
        assert final[1] < 0.02
        assert final[0] == pytest.approx(0.6, abs=0.08)

    def test_fair_share_individual_protects_the_meek(self):
        net = single_gateway(2, mu=1.0)
        rules = [TargetRule(eta=0.05, beta=0.6),
                 TargetRule(eta=0.05, beta=0.4)]
        res = run_closed_loop(net, rules, LinearSaturating(),
                              style=FeedbackStyle.INDIVIDUAL,
                              discipline_kind="fair-share",
                              initial_rates=[0.2, 0.2],
                              control_interval=300.0, n_steps=80,
                              seed=19)
        final = res.tail_mean_rates(10)
        # Theorem 5's floor: the meek connection keeps at least
        # rho_ss(0.4) * mu / 2 = 0.4 / 2.
        floor_meek = LinearSaturating().steady_state_utilisation(0.4) / 2
        assert final[1] >= floor_meek * 0.9


class TestInstabilityInPackets:
    """F5's verdict, packet-level: large N + aggregate + absolute gain
    oscillates; the same N with Fair Share individual feedback and the
    dimensionless-gain rule settles."""

    def test_aggregate_large_gain_oscillates(self):
        n = 8
        net = single_gateway(n, mu=1.0)
        res = run_closed_loop(net, TargetRule(eta=0.3, beta=0.5),
                              LinearSaturating(),
                              style=FeedbackStyle.AGGREGATE,
                              discipline_kind="fifo",
                              initial_rates=np.full(n, 0.5 / n),
                              control_interval=300.0, n_steps=60,
                              seed=23)
        totals = res.rate_history[-30:].sum(axis=1)
        assert totals.max() - totals.min() > 0.3  # persistent swing

    def test_small_gain_settles(self):
        n = 8
        net = single_gateway(n, mu=1.0)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              style=FeedbackStyle.AGGREGATE,
                              discipline_kind="fifo",
                              initial_rates=np.full(n, 0.5 / n),
                              control_interval=300.0, n_steps=60,
                              seed=23)
        totals = res.rate_history[-30:].sum(axis=1)
        assert totals.max() - totals.min() < 0.15
        assert totals.mean() == pytest.approx(0.5, abs=0.08)
