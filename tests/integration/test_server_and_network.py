"""Integration tests: the gateway server and whole-network simulation."""

import math

import numpy as np
import pytest

from repro.core.math_utils import g
from repro.core.topology import (Connection, Gateway, Network,
                                 single_gateway, two_gateway_shared)
from repro.errors import SimulationError
from repro.simulation.network_sim import NetworkSimulation


class TestSingleGatewayMM1:
    def test_mm1_mean_queue(self):
        # One connection at rho = 0.5: E[N] = 1.
        sim = NetworkSimulation(single_gateway(1, mu=1.0), "fifo", seed=11,
                                initial_rates=[0.5])
        sim.run_for(2000.0)
        sim.reset_statistics()
        sim.run_for(30000.0)
        measured = sim.mean_queue_lengths()["g0"][0]
        assert measured == pytest.approx(1.0, rel=0.08)

    def test_throughput_matches_rate(self):
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo", seed=3,
                                initial_rates=[0.2, 0.3])
        sim.run_for(500.0)
        sim.reset_statistics()
        sim.run_for(20000.0)
        thr = sim.throughput()
        assert thr[0] == pytest.approx(0.2, rel=0.07)
        assert thr[1] == pytest.approx(0.3, rel=0.07)

    def test_mean_delay_matches_mm1(self):
        # Sojourn = 1/(mu - lambda) = 2 at rho = 0.5.
        sim = NetworkSimulation(single_gateway(1, mu=1.0), "fifo", seed=5,
                                initial_rates=[0.5])
        sim.run_for(1000.0)
        sim.reset_statistics()
        sim.run_for(30000.0)
        assert sim.mean_delays()[0] == pytest.approx(2.0, rel=0.08)

    def test_zero_rate_connection_is_silent(self):
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo", seed=1,
                                initial_rates=[0.0, 0.3])
        sim.run_for(2000.0)
        assert sim.throughput()[0] == 0.0
        assert sim.mean_queue_lengths()["g0"][0] == 0.0


class TestRouting:
    def test_latency_adds_to_delay(self):
        net = Network([Gateway("g", 1.0, 3.0)],
                      [Connection("c", ("g",))])
        sim = NetworkSimulation(net, "fifo", seed=2, initial_rates=[0.5])
        sim.run_for(1000.0)
        sim.reset_statistics()
        sim.run_for(20000.0)
        # e2e delay = sojourn + latency = 2 + 3.
        assert sim.mean_delays()[0] == pytest.approx(5.0, rel=0.08)

    def test_two_hop_conservation(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=1.0)
        sim = NetworkSimulation(net, "fifo", seed=4,
                                initial_rates=[0.2, 0.2, 0.2])
        sim.run_for(500.0)
        sim.reset_statistics()
        sim.run_for(20000.0)
        thr = sim.throughput()
        assert np.allclose(thr, 0.2, rtol=0.1)
        # The long connection's arrivals appear at both gateways.
        arr = sim.measured_arrival_rates()
        assert arr["ga"][0] == pytest.approx(0.2, rel=0.1)
        assert arr["gb"][0] == pytest.approx(0.2, rel=0.1)

    def test_tandem_queues_independent_poisson(self):
        # Burke's theorem: the second queue also behaves as M/M/1.
        net = Network(
            [Gateway("a", 1.0), Gateway("b", 1.0)],
            [Connection("c", ("a", "b"))])
        sim = NetworkSimulation(net, "fifo", seed=6, initial_rates=[0.5])
        sim.run_for(2000.0)
        sim.reset_statistics()
        sim.run_for(40000.0)
        queues = sim.mean_queue_lengths()
        assert queues["a"][0] == pytest.approx(1.0, rel=0.1)
        assert queues["b"][0] == pytest.approx(1.0, rel=0.1)


class TestRateChanges:
    def test_set_rates_changes_throughput(self):
        sim = NetworkSimulation(single_gateway(1, mu=1.0), "fifo", seed=9,
                                initial_rates=[0.1])
        sim.run_for(2000.0)
        sim.set_rates([0.6])
        sim.reset_statistics()
        sim.run_for(20000.0)
        assert sim.throughput()[0] == pytest.approx(0.6, rel=0.08)

    def test_silencing_a_source(self):
        sim = NetworkSimulation(single_gateway(1, mu=1.0), "fifo", seed=9,
                                initial_rates=[0.5])
        sim.run_for(100.0)
        sim.set_rates([0.0])
        sim.run_for(200.0)
        sim.reset_statistics()
        sim.run_for(1000.0)
        assert sim.throughput()[0] == 0.0

    def test_rate_validation(self):
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo", seed=1,
                                initial_rates=[0.1, 0.1])
        with pytest.raises(SimulationError):
            sim.set_rates([0.1])
        with pytest.raises(SimulationError):
            sim.set_rates([-0.1, 0.1])

    def test_bad_construction(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(single_gateway(2), "fifo",
                              initial_rates=[0.1])
        with pytest.raises(SimulationError):
            NetworkSimulation(single_gateway(2), "fifo",
                              initial_rates=[0.1, 0.1],
                              rate_mode="psychic")


class TestFairSharePreemption:
    def test_small_connection_isolated_from_hog(self):
        # Under FS, a hog at 0.9 cannot hurt the small connection's
        # queue: Q_small stays near g(2*0.05)/2.
        rates = [0.05, 0.9]
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fair-share",
                                seed=21, initial_rates=rates)
        sim.run_for(2000.0)
        sim.reset_statistics()
        sim.run_for(30000.0)
        q_small = sim.mean_queue_lengths()["g0"][0]
        expected = g(0.1) / 2
        assert q_small == pytest.approx(expected, rel=0.25)

    def test_fifo_small_connection_suffers(self):
        rates = [0.05, 0.9]
        sim = NetworkSimulation(single_gateway(2, mu=1.0), "fifo",
                                seed=21, initial_rates=rates)
        sim.run_for(2000.0)
        sim.reset_statistics()
        sim.run_for(30000.0)
        q_small_fifo = sim.mean_queue_lengths()["g0"][0]
        # FIFO: Q = rho_i/(1-rho_tot) = 0.05/0.05 = 1.0 >> FS's ~0.056.
        assert q_small_fifo > 0.5
