"""Acceptance sweep for the batched asynchronous engine: across 100+
generated scenarios, every ``run_async_ensemble`` member reproduces the
scalar :class:`AsynchronousRunner` bit-identically — finals, outcomes,
and step counts — over the full schedule family and a range of delays."""

import numpy as np

from repro.core.asynchronous import (AsynchronousRunner, BernoulliSchedule,
                                     BurstyClock, ClockSchedule,
                                     DriftingClock, RateMixClock,
                                     RoundRobinSchedule,
                                     SynchronousSchedule,
                                     run_async_ensemble)
from repro.scenarios import generate


def _schedule_for(index, spec):
    """The scenario's own clock when it carries one, otherwise a
    deterministic rotation through the schedule family."""
    if spec.clock is not None:
        return spec.clock.schedule(), spec.clock.signal_delay
    rotation = [
        SynchronousSchedule(),
        RoundRobinSchedule(),
        BernoulliSchedule(0.3 + 0.2 * (index % 3), seed=index),
        ClockSchedule(RateMixClock(0.25, 1.0, 0.5, seed=index)),
        ClockSchedule(DriftingClock(0.5, 0.3, 16, seed=index)),
        ClockSchedule(BurstyClock(0.9, 0.2, 8, seed=index)),
    ]
    return rotation[index % len(rotation)], index % 4


class TestAsyncScalarVsBatchSweep:
    def test_bit_identity_over_100_scenarios(self):
        budget = 150
        checked = 0
        for index, spec in enumerate(generate(13, 150)):
            if spec.controller is not None:
                continue  # run_async_ensemble rejects controlled systems
            system = spec.build()
            sched, tau = _schedule_for(index, spec)
            initials = np.stack([spec.initial(), 0.7 * spec.initial()])
            ens = run_async_ensemble(system, initials, schedule=sched,
                                     signal_delay=tau, max_steps=budget,
                                     tol=spec.tol)
            runner = AsynchronousRunner(system, sched, signal_delay=tau)
            for m in range(len(ens)):
                traj = runner.run(initials[m], max_steps=budget,
                                  tol=spec.tol)
                assert ens.outcomes[m] is traj.outcome, (
                    f"{spec.name}: member {m} outcome "
                    f"{ens.outcomes[m].value} != {traj.outcome.value}")
                assert int(ens.steps[m]) == traj.steps, (
                    f"{spec.name}: member {m} steps")
                assert np.array_equal(ens.finals[m], traj.final), (
                    f"{spec.name}: member {m} finals differ")
            checked += 1
        assert checked >= 100, f"only {checked} scenarios exercised"
