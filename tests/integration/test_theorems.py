"""End-to-end checks of the paper's five theorems on the analytic model.

These are the reproduction's core assertions: each test states a
theorem and verifies it computationally on configurations *not* tied to
the experiment harnesses.
"""

import numpy as np
import pytest

from repro.core import (FairShare, FeedbackStyle, Fifo, FlowControlSystem,
                        LinearSaturating, Outcome, ProportionalTargetRule,
                        TargetRule, fair_steady_state, is_fair,
                        jacobian, predicted_steady_state,
                        reservation_floor, satisfies_theorem5_condition,
                        single_gateway, triangularity_defect,
                        two_gateway_shared, tsi_target,
                        worst_floor_ratio)
from repro.core.topology import random_network


class TestTheorem1:
    """TSI iff f vanishes at exactly one b_ss, independent of r and d."""

    def test_steady_state_scales(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        rule = ProportionalTargetRule(eta=0.5, beta=0.5)
        sys1 = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                 rule)
        r1 = sys1.solve(np.full(3, 0.05), max_steps=40000)
        sys5 = FlowControlSystem(net.scaled(5.0), FairShare(),
                                 LinearSaturating(), rule)
        r5 = sys5.solve(np.full(3, 0.25), max_steps=40000)
        assert np.allclose(r5, 5.0 * r1, rtol=1e-6)

    def test_latency_independence(self):
        net = two_gateway_shared()
        rule = ProportionalTargetRule(eta=0.5, beta=0.5)
        base = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                 rule).solve(np.full(3, 0.05),
                                             max_steps=40000)
        lat = net.with_latencies({"ga": 9.0, "gb": 2.5})
        shifted = FlowControlSystem(lat, FairShare(), LinearSaturating(),
                                    rule).solve(np.full(3, 0.05),
                                                max_steps=40000)
        assert np.allclose(base, shifted, atol=1e-9)

    def test_tsi_target_extraction(self):
        assert tsi_target(TargetRule(beta=0.42)) == pytest.approx(0.42)


class TestTheorem2:
    """Aggregate: never guaranteed fair, always potentially fair."""

    def test_unfair_steady_state_exists(self):
        net = single_gateway(3, mu=1.0)
        system = FlowControlSystem(net, Fifo(), LinearSaturating(),
                                   TargetRule(eta=0.05, beta=0.5),
                                   style=FeedbackStyle.AGGREGATE)
        skewed = system.solve(np.array([0.4, 0.05, 0.0]),
                              max_steps=40000)
        assert not is_fair(system.scheme, skewed)
        assert system.is_steady_state(skewed, tol=1e-8)

    def test_exactly_one_fair_point(self):
        net = single_gateway(4, mu=1.0)
        fair = fair_steady_state(net, 0.5)
        assert np.allclose(fair, 0.125)
        # Any other manifold point is unfair: perturb along the manifold.
        system = FlowControlSystem(net, Fifo(), LinearSaturating(),
                                   TargetRule(eta=0.05, beta=0.5),
                                   style=FeedbackStyle.AGGREGATE)
        other = fair + np.array([0.01, -0.01, 0.0, 0.0])
        assert not is_fair(system.scheme, other)


class TestTheorem3:
    """Individual feedback: guaranteed fair, unique steady state,
    discipline-independent."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_networks_converge_to_fair_point(self, seed):
        net = random_network(3, 5, seed=seed, mu_range=(0.8, 2.0))
        rule = TargetRule(eta=0.05, beta=0.5)
        predicted = fair_steady_state(net, 0.5)
        for discipline in (Fifo(), FairShare()):
            system = FlowControlSystem(net, discipline,
                                       LinearSaturating(), rule,
                                       style=FeedbackStyle.INDIVIDUAL)
            final = system.solve(np.full(5, 0.02), max_steps=150000)
            assert np.allclose(final, predicted, atol=1e-5)
            assert is_fair(system.scheme, final, tol=1e-5)


class TestTheorem4:
    """Fair Share: triangular DF; unilateral implies systemic."""

    def test_triangularity_at_generic_points(self):
        net = single_gateway(4, mu=1.0)
        system = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                   TargetRule(eta=0.2, beta=0.5),
                                   style=FeedbackStyle.INDIVIDUAL)
        rng = np.random.default_rng(8)
        for _ in range(5):
            r = np.sort(rng.uniform(0.02, 0.2, 4))
            # well-separated rates to stay off the MIN kinks
            r += np.arange(4) * 0.05
            df = jacobian(system, r, rel_step=1e-8)
            assert triangularity_defect(df, r) < 1e-4

    def test_guaranteed_unilateral_rule_always_converges(self):
        rule = ProportionalTargetRule(eta=1.0, beta=0.5)
        for n in (2, 10, 25):
            net = single_gateway(n, mu=1.0)
            system = FlowControlSystem(net, FairShare(),
                                       LinearSaturating(), rule,
                                       style=FeedbackStyle.INDIVIDUAL)
            rng = np.random.default_rng(n)
            start = rng.uniform(0.01, 0.5 / n, n)
            traj = system.run(start, max_steps=40000)
            assert traj.outcome is Outcome.CONVERGED


class TestTheorem5:
    """Robust iff Q_i <= r_i / (mu - N r_i); FS yes, FIFO no."""

    def test_condition_split(self):
        rng = np.random.default_rng(5)
        fifo_ok, fs_ok = True, True
        for _ in range(100):
            r = rng.uniform(0.0, 0.3, 5)
            fs_ok &= satisfies_theorem5_condition(FairShare(), r, 1.0)
            fifo_ok &= satisfies_theorem5_condition(Fifo(), r, 1.0)
        assert fs_ok
        assert not fifo_ok

    def test_fs_robust_outcome_with_heterogeneous_rules(self):
        net = single_gateway(3, mu=1.0)
        rules = [TargetRule(eta=0.03, beta=b) for b in (0.65, 0.5, 0.35)]
        system = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                   rules, style=FeedbackStyle.INDIVIDUAL)
        traj = system.run(np.full(3, 0.1), max_steps=60000, tol=1e-11)
        final = traj.final
        # Per-connection floors with each connection's own rho_ss.
        from repro.core.robustness import reservation_floor_heterogeneous
        signal = LinearSaturating()
        rho = [signal.steady_state_utilisation(b)
               for b in (0.65, 0.5, 0.35)]
        floors = reservation_floor_heterogeneous(net, rho)
        assert np.all(final >= floors * (1 - 1e-3))

    def test_fifo_not_robust_but_not_starving(self):
        net = single_gateway(3, mu=1.0)
        rules = [TargetRule(eta=0.03, beta=b) for b in (0.65, 0.5, 0.35)]
        system = FlowControlSystem(net, Fifo(), LinearSaturating(),
                                   rules, style=FeedbackStyle.INDIVIDUAL)
        traj = system.run(np.full(3, 0.1), max_steps=60000, tol=1e-11)
        final = traj.final
        from repro.core.robustness import reservation_floor_heterogeneous
        signal = LinearSaturating()
        rho = [signal.steady_state_utilisation(b)
               for b in (0.65, 0.5, 0.35)]
        floors = reservation_floor_heterogeneous(net, rho)
        assert np.any(final < floors * (1 - 1e-3))  # not robust
        assert np.all(final > 0.01)                 # yet nobody starves

    def test_aggregate_starves_the_meek(self):
        net = single_gateway(2, mu=1.0)
        rules = [TargetRule(eta=0.05, beta=0.6),
                 TargetRule(eta=0.05, beta=0.4)]
        system = FlowControlSystem(net, Fifo(), LinearSaturating(),
                                   rules, style=FeedbackStyle.AGGREGATE)
        traj = system.run(np.full(2, 0.2), max_steps=20000)
        assert traj.final[1] < 1e-6
        assert worst_floor_ratio(net, 0.4, traj.final) < 1e-4
