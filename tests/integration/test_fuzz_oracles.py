"""Integration tests for the fuzzing harness: every oracle fires on a
known-bad scenario, the shrinker produces minimal still-failing
reproducers, the artifact/CLI wiring works, and a 25-scenario smoke
sweep over the real engines passes the whole catalogue."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.dynamics import Outcome, Trajectory
from repro.core.fairshare import FairShare
from repro.core.steadystate import predicted_steady_state
from repro.errors import ScenarioError, SweepError
from repro.faults.plan import FaultState
from repro.observability.artifacts import validate_artifact
from repro.scenarios import (ClockSpec, ConnectionSpec, ControllerSpec,
                             FaultPlanSpec, GatewaySpec, InjectorSpec,
                             RuleSpec, ScenarioSpec, SignalSpec,
                             failing_oracles, fuzz, generate,
                             run_scenario, shrink)
from repro.scenarios.oracles import ScenarioContext, run_oracle
from repro.simulation.network_sim import NetworkSimulation


def spec_of(n=3, discipline="fair-share", style="individual",
            rule=None, mu=1.0, fault_plan=None, name="bad", seed=5):
    rule = rule or RuleSpec("proportional-target",
                            {"eta": 0.5, "beta": 0.5})
    return ScenarioSpec(
        name=name,
        gateways=(GatewaySpec("g0", mu),),
        connections=tuple(ConnectionSpec(f"c{i}", ("g0",))
                          for i in range(n)),
        discipline=discipline,
        signal=SignalSpec(),
        style=style,
        rules=(rule,) * n,
        initial_rates=tuple(0.1 + 0.05 * i for i in range(n)),
        max_steps=1500,
        seed=seed,
        fault_plan=fault_plan,
    )


def doctored_context(spec, fake_final):
    """A context whose reference trajectory *claims* convergence to
    ``fake_final`` — the oracle under test must notice the lie."""
    ctx = ScenarioContext(spec)
    final = np.asarray(fake_final, dtype=float)
    ctx._trajectory = Trajectory(
        history=np.stack([spec.initial(), final]),
        outcome=Outcome.CONVERGED, period=1, steps=1)
    return ctx


class TestEveryOracleFires:
    """Each oracle catches the specific violation it exists for."""

    def test_batch_equivalence_catches_scalar_only_mutation(
            self, monkeypatch):
        orig = FairShare.queue_lengths

        def broken(self, rates, mu):
            q = np.array(orig(self, rates, mu), dtype=float)
            if q.shape[0] and np.isfinite(q[-1]):
                q[-1] += 0.01
            return q

        monkeypatch.setattr(FairShare, "queue_lengths", broken)
        fails = failing_oracles(spec_of(), ["batch-equivalence"])
        assert fails == ("batch-equivalence",)

    def test_ensemble_equivalence_catches_scalar_only_mutation(
            self, monkeypatch):
        orig = FairShare.queue_lengths

        def broken(self, rates, mu):
            q = np.array(orig(self, rates, mu), dtype=float)
            if q.shape[0] and np.isfinite(q[-1]):
                q[-1] += 0.01
            return q

        monkeypatch.setattr(FairShare, "queue_lengths", broken)
        fails = failing_oracles(spec_of(), ["ensemble-equivalence"])
        assert fails == ("ensemble-equivalence",)

    def test_blocked_equivalence_catches_row_position_dependence(
            self, monkeypatch):
        # A kernel that leaks the batch-row *position* into the result
        # is invisible to the one-shot run alone, but blocked execution
        # re-bases each member's row index — the differential fires.
        from repro.core.dynamics import FlowControlSystem
        orig = FlowControlSystem.step_batch

        def broken(self, rates):
            out = np.array(orig(self, rates), dtype=float)
            return out + 1e-6 * np.arange(out.shape[0])[:, None]

        monkeypatch.setattr(FlowControlSystem, "step_batch", broken)
        fails = failing_oracles(spec_of(), ["blocked-equivalence"])
        assert fails == ("blocked-equivalence",)

    def test_kernel_equivalence_catches_engine_skew(self, monkeypatch):
        orig = NetworkSimulation.throughput

        def skewed(self):
            thr = np.array(orig(self), dtype=float)
            if self.engine == "fast":
                thr = thr + 1e-9
            return thr

        monkeypatch.setattr(NetworkSimulation, "throughput", skewed)
        fails = failing_oracles(spec_of(discipline="fifo"),
                                ["kernel-equivalence"])
        assert fails == ("kernel-equivalence",)

    def test_compiled_equivalence_catches_compiled_kernel_skew(
            self, monkeypatch):
        from repro.backends import compiled
        if compiled.fifo_lib() is None:
            pytest.skip("no C tier: the oracle reports not-applicable")
        orig = NetworkSimulation.throughput

        def skewed(self):
            thr = np.array(orig(self), dtype=float)
            if self.engine == "compiled":
                thr = thr + 1e-9
            return thr

        monkeypatch.setattr(NetworkSimulation, "throughput", skewed)
        fails = failing_oracles(spec_of(discipline="fifo"),
                                ["compiled-equivalence"])
        assert fails == ("compiled-equivalence",)

    def test_compiled_equivalence_passes_on_healthy_fifo(self):
        res = run_oracle("compiled-equivalence",
                         ScenarioContext(spec_of(discipline="fifo")))
        from repro.backends import compiled
        if compiled.fifo_lib() is None:
            assert not res.applicable
        else:
            assert res.applicable and res.passed
            assert "bit-identical" in res.detail

    def test_compiled_equivalence_inapplicable_off_fifo(self):
        res = run_oracle("compiled-equivalence",
                         ScenarioContext(spec_of()))
        assert not res.applicable

    def test_fixed_point_catches_non_stationary_final(self):
        spec = spec_of()
        ctx = doctored_context(spec, spec.initial())
        res = run_oracle("fixed-point", ctx)
        assert res.applicable and not res.passed

    def test_tsi_catches_scale_dependent_steady_state(self):
        spec = spec_of()
        true_final = spec.build().run(spec.initial(),
                                      max_steps=spec.max_steps).final
        ctx = doctored_context(spec, 0.7 * true_final)
        res = run_oracle("tsi", ctx)
        assert res.applicable and not res.passed

    def test_fairness_manifold_catches_off_manifold_point(self):
        spec = spec_of(style="aggregate", discipline="fifo")
        # Every gateway strictly below rho_ss: not a steady state.
        ctx = doctored_context(spec, [0.01] * spec.num_connections)
        res = run_oracle("fairness-manifold", ctx)
        assert res.applicable and not res.passed

    def test_fs_floor_catches_starved_connection(self):
        spec = spec_of()
        ctx = doctored_context(spec, [0.01] * spec.num_connections)
        res = run_oracle("fs-floor", ctx)
        assert res.applicable and not res.passed

    def test_stability_catches_repelling_fixed_point(self):
        # eta=10 makes the fair point an exact but *repelling* fixed
        # point (spectral radius 4); a trajectory claiming convergence
        # there is lying, and the stability oracle must say so.
        spec = spec_of(n=2, rule=RuleSpec("proportional-target",
                                          {"eta": 10.0, "beta": 0.5}))
        r_star = predicted_steady_state(spec.build())
        ctx = doctored_context(spec, r_star)
        fp = run_oracle("fixed-point", ctx)
        assert fp.applicable and fp.passed  # it IS a fixed point...
        res = run_oracle("stability", ctx)
        assert res.applicable and not res.passed  # ...but repelling

    def test_steady_signal_catches_off_target_signal(self):
        spec = spec_of()
        true_final = spec.build().run(spec.initial(),
                                      max_steps=spec.max_steps).final
        ctx = doctored_context(spec, 0.5 * true_final)
        res = run_oracle("steady-signal", ctx)
        assert res.applicable and not res.passed

    def test_fault_determinism_catches_unseeded_state(self, monkeypatch):
        orig = FaultState.apply
        leak = {"n": 0}

        def flaky(self, step, true_signals):
            out = np.array(orig(self, step, true_signals), dtype=float)
            leak["n"] += 1
            return np.clip(out + 1e-6 * leak["n"], 0.0, 1.0)

        monkeypatch.setattr(FaultState, "apply", flaky)
        plan = FaultPlanSpec(seed=3, injectors=(
            InjectorSpec("quantise", {"levels": 8}),))
        fails = failing_oracles(spec_of(fault_plan=plan),
                                ["fault-determinism"])
        assert fails == ("fault-determinism",)


class TestShrinker:
    def test_fair_share_queue_law_mutation_shrinks_small(
            self, monkeypatch):
        # The ISSUE's acceptance scenario: break the Fair Share queue
        # law on the scalar path only, fuzz until an oracle fires, and
        # shrink the failure to <= 3 connections.
        orig = FairShare.queue_lengths

        def broken(self, rates, mu):
            q = np.array(orig(self, rates, mu), dtype=float)
            if q.shape[0] and np.isfinite(q[-1]):
                q[-1] += 0.01
            return q

        monkeypatch.setattr(FairShare, "queue_lengths", broken)
        target = next(s for s in generate(7, 50)
                      if s.discipline == "fair-share")
        fails = failing_oracles(target)
        assert "batch-equivalence" in fails
        result = shrink(target, oracles=["batch-equivalence"])
        assert result.spec.num_connections <= 3
        assert "batch-equivalence" in failing_oracles(
            result.spec, ["batch-equivalence"])
        # The reproducer round-trips through JSON like any spec.
        assert ScenarioSpec.from_json(result.spec.to_json()) == \
            result.spec

    def test_shrinking_a_healthy_spec_raises(self):
        with pytest.raises(ScenarioError, match="violates no oracle"):
            shrink(spec_of())

    def test_shrink_respects_iteration_cap(self, monkeypatch):
        orig = FairShare.queue_lengths

        def broken(self, rates, mu):
            q = np.array(orig(self, rates, mu), dtype=float)
            if q.shape[0] and np.isfinite(q[-1]):
                q[-1] += 0.01
            return q

        monkeypatch.setattr(FairShare, "queue_lengths", broken)
        result = shrink(spec_of(n=5), oracles=["batch-equivalence"],
                        max_iters=3)
        assert result.evaluations <= 3


class TestHarnessAndCli:
    def test_fuzz_writes_schema_valid_artifacts(self, tmp_path):
        report = fuzz(7, 3, json_dir=tmp_path)
        assert report.passed
        files = sorted(tmp_path.glob("fuzz-7-*.json"))
        assert len(files) == 3
        for path in files:
            artifact = json.loads(path.read_text())
            assert validate_artifact(artifact) == []
            # The embedded spec reproduces the scenario exactly.
            spec = ScenarioSpec.from_json(
                artifact["experiment"]["notes"][0])
            assert spec.name == path.stem

    def test_fuzz_failure_writes_repro_spec(self, tmp_path, monkeypatch):
        orig = FairShare.queue_lengths

        def broken(self, rates, mu):
            q = np.array(orig(self, rates, mu), dtype=float)
            if q.shape[0] and np.isfinite(q[-1]):
                q[-1] += 0.01
            return q

        monkeypatch.setattr(FairShare, "queue_lengths", broken)
        # seed 7 index 1 is a fair-share scenario (fixed by the
        # generator's determinism contract).
        report = fuzz(7, 2, shrink_failures=True, json_dir=tmp_path,
                      oracles=["batch-equivalence"])
        assert not report.passed
        repros = sorted(tmp_path.glob("*.repro.json"))
        assert repros, "failing scenarios must leave a repro spec"
        shrunk = ScenarioSpec.from_json(repros[0].read_text())
        assert shrunk.num_connections <= 3

    def test_cli_fuzz_passes_on_main(self, capsys):
        from repro.cli import main
        assert main(["fuzz", "--seed", "7", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_cli_fuzz_rejects_bad_budget(self):
        from repro.cli import main
        with pytest.raises(SweepError, match="count must be positive"):
            main(["fuzz", "--seed", "7", "--count", "0"])

    def test_cli_fuzz_rejects_unknown_oracle(self):
        from repro.cli import main
        from repro.errors import CLIError
        with pytest.raises(CLIError, match="unknown oracle"):
            main(["fuzz", "--count", "1", "--oracle", "vibes"])


class TestSmokeSweep:
    def test_25_scenarios_pass_all_oracles(self):
        failures = []
        for spec in generate(7, 25):
            outcome = run_scenario(spec)
            failures.extend(
                (spec.name, res.name, res.detail)
                for res in outcome.violations)
        assert failures == []


class TestControllerZooOracles:
    """The 12th/13th oracles: each fires on its known-bad scenario and
    passes on the honest one."""

    def rcp_spec(self, alpha=0.5, beta=0.05, fill=0.4, mu=1.0,
                 name="rcp-unit"):
        return ScenarioSpec(
            name=name,
            gateways=(GatewaySpec("g0", mu),),
            connections=(ConnectionSpec("c0", ("g0",)),
                         ConnectionSpec("c1", ("g0",))),
            discipline="fifo",
            signal=SignalSpec(),
            style="individual",
            rules=(RuleSpec("rcp-source"),) * 2,
            initial_rates=(0.05, 0.2),
            max_steps=2000,
            seed=5,
            controller=ControllerSpec("rcp", {"alpha": alpha,
                                              "beta": beta,
                                              "fill": fill}),
        )

    def tcp_spec(self):
        return spec_of(rule=RuleSpec("tcp-like", {"increase": 0.05,
                                                  "decrease": 0.125,
                                                  "threshold": 0.5}),
                       name="tcp-unit")

    def test_rcp_stability_passes_on_stable_scenario(self):
        res = run_oracle("rcp-stability", ScenarioContext(self.rcp_spec()))
        assert res.applicable and res.passed

    def test_rcp_stability_inapplicable_without_controller(self):
        res = run_oracle("rcp-stability", ScenarioContext(spec_of()))
        assert not res.applicable

    def test_rcp_stability_catches_wrong_equilibrium(self):
        # A stable controller that "converges" away from the max-min
        # allocation of the effective capacities is lying.
        spec = self.rcp_spec()
        ctx = doctored_context(spec, [0.9, 0.05])
        res = run_oracle("rcp-stability", ctx)
        assert res.violated

    def test_rcp_stability_catches_unstable_convergence(self):
        # s = 3 > 2 at a single gateway: the fixed point is repelling,
        # so a CONVERGED outcome (away from the exact fixed point) is
        # impossible.
        spec = self.rcp_spec(alpha=3.0, beta=0.0, fill=0.45)
        ctx = doctored_context(spec, [0.3, 0.3])
        res = run_oracle("rcp-stability", ctx)
        assert res.violated

    def test_rcp_stability_true_unstable_run_passes(self):
        spec = self.rcp_spec(alpha=3.0, beta=0.0, fill=0.45)
        res = run_oracle("rcp-stability", ScenarioContext(spec))
        assert res.applicable and res.passed

    def test_tcp_oscillation_passes_on_real_sawtooth(self):
        res = run_oracle("tcp-oscillation",
                         ScenarioContext(self.tcp_spec()))
        assert res.applicable and res.passed

    def test_tcp_oscillation_catches_convergence_claim(self):
        spec = self.tcp_spec()
        ctx = doctored_context(spec, spec.initial())
        res = run_oracle("tcp-oscillation", ctx)
        assert res.violated
        assert "never vanishes" in res.detail

    def test_tcp_oscillation_inapplicable_for_classic_rules(self):
        res = run_oracle("tcp-oscillation", ScenarioContext(spec_of()))
        assert not res.applicable

    def test_batch_equivalence_covers_the_controlled_path(
            self, monkeypatch):
        from repro.core.rcp import RcpBank
        spec = self.rcp_spec()
        res = run_oracle("batch-equivalence", ScenarioContext(spec))
        assert res.applicable and res.passed
        assert "controller state" in res.detail

        orig = RcpBank.update_batch

        def skewed(self, rates, state):
            return orig(self, rates, state) + 1e-6

        monkeypatch.setattr(RcpBank, "update_batch", skewed)
        assert failing_oracles(spec, ["batch-equivalence"]) == \
            ("batch-equivalence",)


class TestAsyncOracles:
    """The 16th/17th oracles: each fires on its known-bad mutation and
    passes on the honest clocked scenario."""

    def clocked_spec(self, kind="mix", params=None, signal_delay=1):
        params = params if params is not None else {"slow_rate": 0.3,
                                                    "seed": 4}
        return dataclasses.replace(
            spec_of(name="clocked"),
            clock=ClockSpec(kind, params, signal_delay=signal_delay))

    def test_async_oracles_inapplicable_without_clock(self):
        ctx = ScenarioContext(spec_of())
        for name in ("async-fixed-point", "async-batch-equivalence"):
            res = run_oracle(name, ctx)
            assert not res.applicable
            assert "no clock" in res.detail

    def test_async_fixed_point_passes_on_honest_scenario(self):
        res = run_oracle("async-fixed-point",
                         ScenarioContext(self.clocked_spec()))
        assert res.applicable and res.passed
        assert "fixed point held" in res.detail

    def test_async_batch_equivalence_passes_on_honest_scenario(self):
        res = run_oracle("async-batch-equivalence",
                         ScenarioContext(self.clocked_spec()))
        assert res.applicable and res.passed
        assert "bit-identical" in res.detail

    def test_async_fixed_point_catches_drifting_steady_state(
            self, monkeypatch):
        # Bias the async engine's clip stage: the synchronous reference
        # (dynamics.py has its own import) still converges to the true
        # fixed point, but every async trajectory drifts off it.
        import repro.core.asynchronous as async_mod
        orig = async_mod.clip_nonnegative

        def biased(vec, xp=np):
            return orig(vec, xp=xp) + 1e-4

        monkeypatch.setattr(async_mod, "clip_nonnegative", biased)
        fails = failing_oracles(self.clocked_spec(),
                                ["async-fixed-point"])
        assert fails == ("async-fixed-point",)

    def test_async_batch_equivalence_catches_batch_only_mutation(
            self, monkeypatch):
        # Skew apply_batch alone: the scalar runner goes through
        # rule.apply, so only the batched async path moves.
        from repro.core.ratecontrol import RateAdjustment
        orig = RateAdjustment.apply_batch

        def skewed(self, rates, signals, delays, **kw):
            return orig(self, rates, signals, delays, **kw) + 1e-9

        monkeypatch.setattr(RateAdjustment, "apply_batch", skewed)
        fails = failing_oracles(self.clocked_spec(),
                                ["async-batch-equivalence"])
        assert fails == ("async-batch-equivalence",)

    def test_async_oracles_green_on_seed_scenarios(self):
        # Every generated clocked scenario passes both oracles.
        checked = 0
        for spec in generate(42, 30):
            if spec.clock is None:
                continue
            fails = failing_oracles(
                spec, ["async-fixed-point", "async-batch-equivalence"])
            assert fails == (), f"{spec.name}: {fails}"
            checked += 1
        assert checked >= 3
