"""Integration tests: the fast struct-of-arrays kernel is bit-identical
to the legacy object engine.

Every supported configuration is run on both engines with the same seed
and compared field by field — mean queue lengths, measured arrival
rates, drop fractions, throughput, delays, *and* the processed event
count (so the engines agree on the event schedule itself, not just on
aggregate statistics).
"""

import numpy as np
import pytest

from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import Connection, Gateway, Network, single_gateway
from repro.errors import SimulationError
from repro.observability import collect, validate_run_record
from repro.simulation.closed_loop import run_closed_loop
from repro.simulation.network_sim import NetworkSimulation

RATES4 = [0.2, 0.2, 0.25, 0.15]
RATE_SEQ = [np.array([0.3, 0.1, 0.2, 0.2]), np.array([0.15, 0.25, 0.2, 0.1])]


def _net4():
    return single_gateway(4, mu=1.0)


def _net4_latency():
    return single_gateway(4, mu=1.0).with_latencies({"g0": 0.5})


def _tandem(latency=0.5):
    return Network(gateways=[Gateway("g0", mu=1.0, latency=latency),
                             Gateway("g1", mu=1.2, latency=latency)],
                   connections=[Connection("c0", ("g0", "g1")),
                                Connection("c1", ("g0", "g1")),
                                Connection("c2", ("g1",)),
                                Connection("c3", ("g0",))])


def _run(engine, disc, net, rates, horizon=400.0, seed=7, steps=0,
         buffer_sizes=None, rate_mode="oracle", refresh=False,
         rate_seq=None):
    """One warmup + measurement run; returns every public statistic."""
    sim = NetworkSimulation(net, discipline_kind=disc, seed=seed,
                            initial_rates=rates, rate_mode=rate_mode,
                            buffer_sizes=buffer_sizes, engine=engine)
    sim.run_for(horizon / 4)
    sim.reset_statistics()
    for k in range(max(1, steps)):
        sim.run_for(horizon / max(1, steps))
        if refresh:
            sim.refresh_measured_rates()
        if rate_seq is not None and k < len(rate_seq):
            sim.set_rates(rate_seq[k])
    return {"mql": sim.mean_queue_lengths(),
            "arr": sim.measured_arrival_rates(),
            "drop": sim.drop_fractions(),
            "thr": sim.throughput(),
            "delay": sim.mean_delays(),
            "events": sim.events_processed,
            "engine": sim.engine}


def _assert_engines_agree(**kw):
    a = _run("legacy", **kw)
    b = _run("fast", **kw)
    assert a["engine"] == "legacy" and b["engine"] == "fast"
    for key in ("mql", "arr", "drop"):
        for g in a[key]:
            assert np.array_equal(a[key][g], b[key][g]), \
                f"{key}[{g}]: {a[key][g]} vs {b[key][g]}"
    assert np.array_equal(a["thr"], b["thr"])
    assert np.array_equal(a["delay"], b["delay"], equal_nan=True)
    assert a["events"] == b["events"]


def _assert_compiled_matches_fast(**kw):
    a = _run("fast", **kw)
    b = _run("compiled", **kw)
    assert a["engine"] == "fast" and b["engine"] == "compiled"
    for key in ("mql", "arr", "drop"):
        for g in a[key]:
            assert np.array_equal(a[key][g], b[key][g]), \
                f"{key}[{g}]: {a[key][g]} vs {b[key][g]}"
    assert np.array_equal(a["thr"], b["thr"])
    assert np.array_equal(a["delay"], b["delay"], equal_nan=True)
    assert a["events"] == b["events"]


class TestBitIdentity:
    def test_fifo_zero_latency(self):
        _assert_engines_agree(disc="fifo", net=_net4(), rates=RATES4)

    def test_fifo_with_latency_uses_burst_path(self):
        _assert_engines_agree(disc="fifo", net=_net4_latency(),
                              rates=RATES4)

    def test_fair_share_with_rate_updates(self):
        _assert_engines_agree(disc="fair-share", net=_net4_latency(),
                              rates=RATES4, steps=2, rate_seq=RATE_SEQ)

    def test_fixed_priority(self):
        _assert_engines_agree(disc="fixed-priority", net=_net4_latency(),
                              rates=RATES4)

    def test_fifo_finite_buffer_tail_drop(self):
        _assert_engines_agree(disc="fifo", net=_net4_latency(),
                              rates=[0.5, 0.5, 0.4, 0.3], buffer_sizes=4)

    def test_tandem_fifo(self):
        _assert_engines_agree(disc="fifo", net=_tandem(), rates=RATES4,
                              steps=2, rate_seq=RATE_SEQ)

    def test_tandem_fair_share(self):
        _assert_engines_agree(disc="fair-share", net=_tandem(),
                              rates=RATES4, steps=2, rate_seq=RATE_SEQ)

    def test_measured_rate_mode_with_refresh(self):
        # Satellite: the windowed arrival-rate estimator feeds Fair
        # Share thinning identically under either engine.
        _assert_engines_agree(disc="fair-share", net=_net4_latency(),
                              rates=RATES4, rate_mode="measured",
                              steps=3, refresh=True)

    def test_measured_estimates_are_sane(self):
        out = _run("fast", disc="fair-share", net=_net4_latency(),
                   rates=RATES4, rate_mode="measured", steps=3,
                   refresh=True, horizon=2000.0)
        for g, est in out["arr"].items():
            assert np.all(np.isfinite(est))
            assert np.all(est >= 0.0)


class TestCompiledEngine:
    """engine="compiled" (the runtime-built C event loop) against the
    fast kernel: the same bit-identity contract the fast engine keeps
    against legacy.  These run with or without a C compiler — when no
    library could be built the compiled engine transparently executes
    the python loop, and the contract must hold either way."""

    def test_fifo_zero_latency(self):
        _assert_compiled_matches_fast(disc="fifo", net=_net4(),
                                      rates=RATES4)

    def test_fifo_with_latency_uses_burst_path(self):
        _assert_compiled_matches_fast(disc="fifo", net=_net4_latency(),
                                      rates=RATES4)

    def test_fifo_finite_buffer_tail_drop(self):
        _assert_compiled_matches_fast(disc="fifo", net=_net4_latency(),
                                      rates=[0.5, 0.5, 0.4, 0.3],
                                      buffer_sizes=4)

    def test_tandem_fifo_with_rate_updates(self):
        _assert_compiled_matches_fast(disc="fifo", net=_tandem(),
                                      rates=RATES4, steps=2,
                                      rate_seq=RATE_SEQ)

    def test_measured_rate_mode_with_refresh(self):
        _assert_compiled_matches_fast(disc="fifo", net=_net4_latency(),
                                      rates=RATES4,
                                      rate_mode="measured", steps=3,
                                      refresh=True)

    def test_closed_loop_trajectories_identical(self):
        kw = dict(style=FeedbackStyle.INDIVIDUAL,
                  discipline_kind="fifo", control_interval=150.0,
                  n_steps=6, seed=3)
        net = _net4_latency()
        fast = run_closed_loop(net, TargetRule(eta=0.1, beta=0.4),
                               LinearSaturating(), engine="fast", **kw)
        comp = run_closed_loop(net, TargetRule(eta=0.1, beta=0.4),
                               LinearSaturating(), engine="compiled",
                               **kw)
        assert np.array_equal(fast.rate_history, comp.rate_history)
        assert np.array_equal(fast.signal_history, comp.signal_history)
        assert np.array_equal(fast.final_throughput,
                              comp.final_throughput)
        assert np.array_equal(fast.final_delays, comp.final_delays,
                              equal_nan=True)

    def test_compiled_engine_is_selectable(self):
        sim = NetworkSimulation(_net4(), discipline_kind="fifo",
                                initial_rates=RATES4,
                                engine="compiled")
        assert sim.engine == "compiled"

    def test_forced_compiled_on_unsupported_raises(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(_net4(), discipline_kind="fair-queueing",
                              initial_rates=RATES4, engine="compiled")


class TestEngineSelection:
    def test_auto_picks_fast_for_supported_disciplines(self):
        for disc in ("fifo", "fair-share", "fixed-priority"):
            sim = NetworkSimulation(_net4(), discipline_kind=disc,
                                    initial_rates=RATES4)
            assert sim.engine == "fast"

    def test_auto_falls_back_for_fair_queueing(self):
        sim = NetworkSimulation(_net4(), discipline_kind="fair-queueing",
                                initial_rates=RATES4)
        assert sim.engine == "legacy"

    def test_auto_falls_back_for_longest_drop(self):
        sim = NetworkSimulation(_net4(), discipline_kind="fifo",
                                initial_rates=RATES4, buffer_sizes=4,
                                drop_policy="longest")
        assert sim.engine == "legacy"

    def test_longest_drop_with_infinite_buffers_stays_fast(self):
        # The eviction policy only matters when some buffer is finite.
        sim = NetworkSimulation(_net4(), discipline_kind="fifo",
                                initial_rates=RATES4,
                                drop_policy="longest")
        assert sim.engine == "fast"

    def test_forced_fast_on_unsupported_raises(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(_net4(), discipline_kind="fair-queueing",
                              initial_rates=RATES4, engine="fast")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            NetworkSimulation(_net4(), initial_rates=RATES4,
                              engine="turbo")


class TestFuzzGeneratedConfigs:
    """The bit-identity contract holds on configurations drawn from the
    scenario fuzzer (fixed seed), not just the hand-picked ones above —
    topology, rates, and discipline come straight from the generator."""

    @pytest.fixture(scope="class")
    def fuzz_specs(self):
        from repro.scenarios import generate
        specs = [s for s in generate(7, 30)
                 if s.discipline in ("fifo", "fair-share")]
        assert len(specs) >= 2
        return specs

    def test_fuzz_fifo_config_bit_identical(self, fuzz_specs):
        spec = next(s for s in fuzz_specs if s.discipline == "fifo")
        _assert_engines_agree(disc="fifo", net=spec.network(),
                              rates=list(spec.initial_rates))

    def test_fuzz_fair_share_config_bit_identical(self, fuzz_specs):
        spec = next(s for s in fuzz_specs
                    if s.discipline == "fair-share")
        _assert_engines_agree(disc="fair-share", net=spec.network(),
                              rates=list(spec.initial_rates), steps=2,
                              rate_seq=[0.8 * np.asarray(spec.initial_rates),
                                        1.1 * np.asarray(spec.initial_rates)])

    def test_fuzz_multi_gateway_config_bit_identical(self, fuzz_specs):
        spec = next(s for s in fuzz_specs if len(s.gateways) > 1)
        _assert_engines_agree(disc=spec.discipline, net=spec.network(),
                              rates=list(spec.initial_rates))


class TestClosedLoopEngines:
    KW = dict(style=FeedbackStyle.INDIVIDUAL, discipline_kind="fair-share",
              control_interval=150.0, n_steps=6, seed=3)

    def _loop(self, engine):
        net = _net4_latency()
        return run_closed_loop(net, TargetRule(eta=0.1, beta=0.4),
                               LinearSaturating(), engine=engine,
                               **self.KW)

    def test_trajectories_identical_across_engines(self):
        legacy = self._loop("legacy")
        fast = self._loop("fast")
        assert np.array_equal(legacy.rate_history, fast.rate_history)
        assert np.array_equal(legacy.signal_history, fast.signal_history)
        assert np.array_equal(legacy.final_throughput,
                              fast.final_throughput)
        assert np.array_equal(legacy.final_delays, fast.final_delays,
                              equal_nan=True)

    def test_run_record_phases_emitted(self):
        with collect() as session:
            self._loop("auto")
        (rec,) = session.run_records
        assert validate_run_record(rec.to_dict()) == []
        assert rec.kind == "run"
        for phase in ("simulate", "signals", "rules"):
            assert rec.phase_seconds[phase] > 0.0
        assert rec.outcome_counts == {"completed": 1}
