"""The public API surface: everything advertised must import and work."""

import numpy as np
import pytest

import repro
import repro.analysis
import repro.baselines
import repro.experiments
import repro.simulation


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_subpackage_alls_resolve(self):
        for pkg in (repro.analysis, repro.baselines, repro.simulation,
                    repro.experiments):
            for name in pkg.__all__:
                assert hasattr(pkg, name), (pkg.__name__, name)


class TestQuickstartSnippet:
    def test_docstring_example_runs(self):
        # The example from repro/__init__ must work as written.
        from repro import (FairShare, FeedbackStyle, FlowControlSystem,
                           LinearSaturating, TargetRule, single_gateway)

        net = single_gateway(4, mu=1.0)
        system = FlowControlSystem(net, FairShare(), LinearSaturating(),
                                   TargetRule(eta=0.1, beta=0.5),
                                   style=FeedbackStyle.INDIVIDUAL)
        traj = system.run(np.array([0.1, 0.2, 0.3, 0.4]))
        assert traj.outcome is repro.Outcome.CONVERGED
        assert np.allclose(traj.final, 0.125, atol=1e-6)

    def test_errors_exported(self):
        assert issubclass(repro.TopologyError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
