"""Integration test: SIGKILL a live orchestrated sweep at fuzzed
crashpoints and prove the resumed run is bit-identical to a clean one."""

import signal

import pytest

from repro.chaos import KNOWN_CRASHPOINTS, parse_crashpoint
from repro.chaos.harness import kill_anywhere, run_victim
from repro.errors import ChaosError


class TestCrashpointSpec:
    def test_parse_name_and_count(self):
        assert parse_crashpoint("a-site") == ("a-site", 1)
        assert parse_crashpoint("a-site:3") == ("a-site", 3)

    @pytest.mark.parametrize("spec", ["", ":2", "a:x", "a:0"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ChaosError):
            parse_crashpoint(spec)


class TestKillAnywhere:
    def test_clean_victim_completes(self, tmp_path):
        proc = run_victim(tmp_path)
        assert proc.returncode == 0

    def test_victim_dies_at_crashpoint(self, tmp_path):
        proc = run_victim(tmp_path,
                          crash_spec="orchestrator-pre-shard-result")
        assert proc.returncode == -signal.SIGKILL

    def test_resume_after_kill_is_bit_identical(self, tmp_path):
        reports = kill_anywhere(tmp_path, rounds=3, seed=1)
        assert len(reports) == 3
        assert all(r.ok for r in reports), reports
        assert all(r.point in KNOWN_CRASHPOINTS for r in reports)
        # at least one round must have actually killed the victim
        assert any(r.killed for r in reports), reports
