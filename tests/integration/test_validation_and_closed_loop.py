"""Integration tests: simulator-vs-analytic validation and the closed
feedback loop."""

import numpy as np
import pytest

from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import fair_steady_state
from repro.core.topology import single_gateway, two_gateway_shared
from repro.errors import InfeasibleLoadError, SimulationError
from repro.simulation.closed_loop import run_closed_loop
from repro.simulation.validation import (analytic_counterpart,
                                         validate_single_gateway)


class TestValidation:
    @pytest.mark.parametrize("kind", ["fifo", "fair-share",
                                      "fixed-priority"])
    def test_queue_laws_match(self, kind):
        # Total load 0.7: every class mixes fast enough that a 30k
        # horizon gives tight time-averages (at load 0.85 the lowest
        # priority class needs far longer to converge).
        result = validate_single_gateway([0.1, 0.2, 0.25, 0.15], 1.0,
                                         kind, horizon=30000.0,
                                         warmup=3000.0, seed=1)
        assert result.worst_relative_error < 0.15

    def test_overload_rejected(self):
        with pytest.raises(InfeasibleLoadError):
            validate_single_gateway([0.6, 0.6], 1.0, "fifo")

    def test_unknown_counterpart(self):
        with pytest.raises(SimulationError):
            analytic_counterpart("fair-queueing", 2)

    def test_seed_changes_measurement_not_expectation(self):
        a = validate_single_gateway([0.2, 0.3], 1.0, "fifo",
                                    horizon=3000.0, warmup=300.0, seed=1)
        b = validate_single_gateway([0.2, 0.3], 1.0, "fifo",
                                    horizon=3000.0, warmup=300.0, seed=2)
        assert np.allclose(a.expected, b.expected)
        assert not np.allclose(a.measured, b.measured)

    def test_report_fields(self):
        r = validate_single_gateway([0.2], 1.0, "fifo", horizon=2000.0,
                                    warmup=200.0, seed=3)
        assert r.discipline_kind == "fifo"
        assert r.absolute_errors.shape == (1,)


class TestClosedLoop:
    def test_reaches_fair_point_fair_share(self):
        net = single_gateway(3, mu=1.0)
        fair = fair_steady_state(net, 0.5)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              style=FeedbackStyle.INDIVIDUAL,
                              discipline_kind="fair-share",
                              initial_rates=[0.05, 0.2, 0.4],
                              control_interval=400.0, n_steps=50, seed=2)
        settled = res.tail_mean_rates(10)
        assert np.max(np.abs(settled - fair)) / np.max(fair) < 0.2

    def test_aggregate_total_rate_controlled(self):
        # Aggregate feedback pins the total rate near rho_ss * mu even
        # though the split is path-dependent.
        net = single_gateway(3, mu=1.0)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              style=FeedbackStyle.AGGREGATE,
                              discipline_kind="fifo",
                              initial_rates=[0.05, 0.1, 0.15],
                              control_interval=400.0, n_steps=50, seed=3)
        total = float(res.tail_mean_rates(10).sum())
        assert total == pytest.approx(0.5, rel=0.15)

    def test_multi_gateway_waterfill(self):
        net = two_gateway_shared(mu_a=1.0, mu_b=2.0)
        fair = fair_steady_state(net, 0.5)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              style=FeedbackStyle.INDIVIDUAL,
                              discipline_kind="fair-share",
                              initial_rates=[0.1, 0.1, 0.1],
                              control_interval=400.0, n_steps=60, seed=4)
        settled = res.tail_mean_rates(10)
        assert np.max(np.abs(settled - fair)) / np.max(fair) < 0.25

    def test_history_shapes(self):
        net = single_gateway(2, mu=1.0)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              initial_rates=[0.1, 0.1],
                              control_interval=50.0, n_steps=8, seed=5)
        assert res.rate_history.shape == (9, 2)
        assert res.signal_history.shape == (8, 2)
        assert res.times.shape == (9,)
        assert res.steps == 8

    def test_rule_count_mismatch(self):
        net = single_gateway(2, mu=1.0)
        with pytest.raises(SimulationError):
            run_closed_loop(net, [TargetRule()], LinearSaturating(),
                            initial_rates=[0.1, 0.1], n_steps=1)

    def test_measured_rate_mode_runs(self):
        net = single_gateway(2, mu=1.0)
        res = run_closed_loop(net, TargetRule(eta=0.05, beta=0.5),
                              LinearSaturating(),
                              discipline_kind="fair-share",
                              initial_rates=[0.1, 0.3],
                              control_interval=200.0, n_steps=20, seed=6,
                              rate_mode="measured")
        assert np.all(res.final_rates > 0)
