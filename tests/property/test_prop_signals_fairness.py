"""Property-based tests for signalling, fairness, and robustness."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fairness import jain_index, max_min_allocation
from repro.core.robustness import theorem5_bound
from repro.core.signals import (ExponentialSignal, LinearSaturating,
                                PowerSaturating, individual_congestion)
from repro.core.topology import random_network

SIGNALS = [LinearSaturating(), PowerSaturating(2.0),
           ExponentialSignal(0.5)]


class TestSignalProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.0, 1e6), st.floats(0.0, 1e6),
           st.sampled_from(SIGNALS))
    def test_monotone(self, c1, c2, signal):
        lo, hi = min(c1, c2), max(c1, c2)
        assert signal(lo) <= signal(hi) + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.0, 100.0), st.sampled_from(SIGNALS))
    def test_range(self, c, signal):
        assert 0.0 <= signal(c) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.0, 10.0), st.sampled_from(SIGNALS))
    def test_roundtrip_away_from_saturation(self, c, signal):
        # Near b = 1 the inverse loses float precision (1 - b
        # underflows), so the roundtrip is only tested where the signal
        # retains resolution.
        b = signal(c)
        if b < 0.999:
            assert signal.congestion_for(b) == pytest.approx(
                c, abs=1e-6, rel=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0.0, 20.0), min_size=1, max_size=8))
    def test_individual_congestion_bounds(self, queues):
        q = np.array(queues)
        c = individual_congestion(q)
        total = q.sum()
        n = len(queues)
        for i in range(n):
            # N * Q_i >= C_i >= Q_i and C_i <= aggregate.
            assert c[i] <= total + 1e-9
            assert c[i] >= q[i] - 1e-9
            assert c[i] <= n * q[i] + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0.0, 20.0), min_size=2, max_size=8))
    def test_individual_congestion_ordered_with_queues(self, queues):
        q = np.array(queues)
        c = individual_congestion(q)
        order = np.argsort(q, kind="stable")
        assert np.all(np.diff(c[order]) >= -1e-9)


class TestMaxMinProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_allocation_feasible_and_saturating(self, seed):
        net = random_network(4, 6, seed=seed, mu_range=(0.5, 3.0))
        caps = {g: 0.5 * net.mu(g) for g in net.gateway_names}
        rates = max_min_allocation(net, caps)
        assert np.all(rates > 0)
        for g in net.gateway_names:
            used = sum(rates[i] for i in net.connections_at(g))
            assert used <= caps[g] + 1e-9
        # Max-min: every connection crosses a gateway that is saturated
        # and where it holds a maximal rate.
        for i in range(net.num_connections):
            ok = False
            for g in net.gamma(i):
                used = sum(rates[j] for j in net.connections_at(g))
                peers_max = max(rates[j] for j in net.connections_at(g))
                if used >= caps[g] - 1e-9 and rates[i] >= peers_max - 1e-9:
                    ok = True
            assert ok

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.floats(1.5, 10.0))
    def test_allocation_scales_with_capacity(self, seed, c):
        net = random_network(3, 5, seed=seed)
        caps = {g: 0.5 * net.mu(g) for g in net.gateway_names}
        scaled = {g: v * c for g, v in caps.items()}
        r1 = max_min_allocation(net, caps)
        r2 = max_min_allocation(net, scaled)
        assert np.allclose(r2, c * r1, rtol=1e-9)


class TestJainProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0.001, 10.0), min_size=1, max_size=10))
    def test_range(self, rates):
        j = jain_index(rates)
        assert 1.0 / len(rates) - 1e-9 <= j <= 1.0 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.001, 10.0), st.integers(1, 10))
    def test_equal_rates_max(self, r, n):
        assert jain_index([r] * n) == pytest.approx(1.0)


class TestTheorem5BoundProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0.0, 0.5), min_size=1, max_size=8))
    def test_bound_nonnegative_and_inf_beyond_share(self, rates):
        r = np.array(rates)
        bound = theorem5_bound(r, 1.0)
        n = len(rates)
        for i in range(n):
            if n * r[i] >= 1.0:
                assert math.isinf(bound[i])
            else:
                assert bound[i] >= 0.0
