"""Property-based tests for the fault-injection contract.

Two guarantees are load-bearing for every other result in the repo:

* the *empty* plan is a perfect no-op — scalar runs, ensembles, and the
  packet-level closed loop are byte-identical with and without it;
* a *seeded* plan is deterministic — the same plan replayed over the
  same inputs produces identical perturbations and identical recorded
  events.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.faults import (ExtraDelay, FaultPlan, SignalLoss, SignalNoise,
                          SignalQuantisation)
from repro.simulation.closed_loop import run_closed_loop

EMPTY = FaultPlan()


def _system(n, eta, beta, discipline="fair-share"):
    disc = FairShare() if discipline == "fair-share" else Fifo()
    return FlowControlSystem(single_gateway(n, mu=1.0), disc,
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=beta),
                             style=FeedbackStyle.INDIVIDUAL)


class TestEmptyPlanIsNoOp:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.0, 0.5), min_size=2, max_size=5),
           st.floats(0.05, 0.4), st.floats(0.3, 0.7))
    def test_run_bit_identical(self, start, eta, beta):
        system = _system(len(start), eta, beta)
        r0 = np.array(start)
        plain = system.run(r0, max_steps=300)
        empty = system.run(r0, max_steps=300, faults=EMPTY)
        assert np.array_equal(plain.history, empty.history)
        assert plain.outcome is empty.outcome
        assert plain.steps == empty.steps
        assert empty.fault_events is None

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 6), st.integers(0, 100),
           st.floats(0.05, 0.4), st.floats(0.3, 0.7))
    def test_run_ensemble_bit_identical(self, n, members, seed, eta,
                                        beta):
        system = _system(n, eta, beta)
        rng = np.random.default_rng(seed)
        starts = rng.uniform(0.0, 0.5, size=(members, n))
        plain = system.run_ensemble(starts, max_steps=300)
        empty = system.run_ensemble(starts, max_steps=300, faults=EMPTY)
        assert np.array_equal(plain.finals, empty.finals)
        assert plain.outcomes == empty.outcomes
        assert empty.fault_events is None

    def test_closed_loop_bit_identical(self):
        network = single_gateway(3, mu=1.0)
        common = dict(rules=TargetRule(eta=0.1, beta=0.5),
                      signal_fn=LinearSaturating(),
                      control_interval=50.0, n_steps=5, seed=4)
        plain = run_closed_loop(network, **common)
        empty = run_closed_loop(network, faults=EMPTY, **common)
        assert np.array_equal(plain.rate_history, empty.rate_history)
        assert np.array_equal(plain.signal_history, empty.signal_history)
        assert np.array_equal(plain.final_throughput,
                              empty.final_throughput)
        assert empty.fault_events is None


def _plan_strategy():
    loss = st.floats(0.05, 0.9).map(lambda p: SignalLoss(rate=p))
    noise = st.tuples(st.floats(0.05, 0.9), st.floats(0.01, 0.5)).map(
        lambda t: SignalNoise(rate=t[0], amplitude=t[1]))
    quant = st.integers(2, 16).map(lambda k: SignalQuantisation(levels=k))
    delay = st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
        lambda t: t != (0, 0)).map(
        lambda t: ExtraDelay(delay=t[0], jitter=t[1]))
    return st.tuples(
        st.lists(st.one_of(loss, noise, quant, delay), min_size=1,
                 max_size=3),
        st.integers(0, 2 ** 16)).map(
        lambda t: FaultPlan(injectors=tuple(t[0]), seed=t[1]))


class TestSeededPlanIsDeterministic:
    @settings(max_examples=20, deadline=None)
    @given(_plan_strategy(), st.integers(2, 4), st.integers(0, 100))
    def test_replay_is_identical(self, plan, n, seed):
        rng = np.random.default_rng(seed)
        signals = [rng.uniform(0.0, 1.0, n) for _ in range(30)]
        runs = []
        for _ in range(2):
            state = plan.start(n_connections=n)
            observed = [state.apply(t + 1, b)
                        for t, b in enumerate(signals)]
            runs.append((observed, state.events))
        (obs_a, ev_a), (obs_b, ev_b) = runs
        for a, b in zip(obs_a, obs_b):
            assert np.array_equal(a, b)
        assert ev_a == ev_b
        # observations stay finite and within the signal codomain
        for a in obs_a:
            assert np.all(np.isfinite(a))
            assert np.all(a >= 0.0) and np.all(a <= 1.0)

    @settings(max_examples=10, deadline=None)
    @given(_plan_strategy(), st.integers(0, 50))
    def test_whole_trajectory_reproducible(self, plan, seed):
        system = _system(3, 0.1, 0.5)
        rng = np.random.default_rng(seed)
        start = rng.uniform(0.0, 0.4, 3)
        t1 = system.run(start, max_steps=150, faults=plan)
        t2 = system.run(start, max_steps=150, faults=plan)
        assert np.array_equal(t1.history, t2.history)
        assert t1.fault_events == t2.fault_events
