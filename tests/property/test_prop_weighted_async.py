"""Property-based tests for the weighted and asynchronous extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asynchronous import (AsynchronousRunner,
                                     RoundRobinSchedule)
from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.math_utils import g
from repro.core.ratecontrol import ProportionalTargetRule
from repro.core.signals import (FeedbackStyle, LinearSaturating,
                                weighted_individual_congestion)
from repro.core.topology import single_gateway
from repro.core.weighted import (WeightedFairShare,
                                 weighted_max_min_allocation)

MU = 1.0


@st.composite
def rates_and_weights(draw, max_n=6, stable=True):
    n = draw(st.integers(2, max_n))
    rates = np.array([draw(st.floats(0.0, 0.3)) for _ in range(n)])
    if stable and rates.sum() >= 0.95:
        rates = rates * (0.9 / rates.sum())
    weights = np.array([draw(st.floats(0.2, 5.0)) for _ in range(n)])
    return rates, weights


class TestWeightedFairShareProperties:
    @settings(max_examples=120, deadline=None)
    @given(rates_and_weights())
    def test_conservation(self, rw):
        rates, weights = rw
        total = WeightedFairShare(weights).total_queue(rates, MU)
        assert total == pytest.approx(g(rates.sum() / MU), abs=1e-8)

    @settings(max_examples=120, deadline=None)
    @given(rates_and_weights())
    def test_weighted_robustness_bound(self, rw):
        rates, weights = rw
        q = WeightedFairShare(weights).queue_lengths(rates, MU)
        big_phi = weights.sum()
        for i in range(rates.shape[0]):
            denom = MU - (big_phi / weights[i]) * rates[i]
            if denom <= 0:
                continue
            assert q[i] <= rates[i] / denom + 1e-9

    @settings(max_examples=120, deadline=None)
    @given(rates_and_weights(), st.floats(0.1, 20.0))
    def test_time_scale_invariance(self, rw, scale):
        rates, weights = rw
        wfs = WeightedFairShare(weights)
        q1 = wfs.queue_lengths(rates, MU)
        q2 = wfs.queue_lengths(rates * scale, MU * scale)
        assert np.allclose(q1, q2, rtol=1e-9, atol=1e-12)

    @settings(max_examples=120, deadline=None)
    @given(rates_and_weights(), st.integers(0, 5),
           st.floats(0.01, 0.2))
    def test_triangular_in_normalised_order(self, rw, idx, bump):
        rates, weights = rw
        idx = idx % rates.shape[0]
        v = rates / weights
        wfs = WeightedFairShare(weights)
        q1 = wfs.queue_lengths(rates, MU)
        bumped = rates.copy()
        bumped[idx] += bump
        q2 = wfs.queue_lengths(bumped, MU)
        strictly_below = v < v[idx] - 1e-12
        assert np.allclose(q1[strictly_below], q2[strictly_below],
                           atol=1e-9)

    @settings(max_examples=80, deadline=None)
    @given(rates_and_weights())
    def test_weighted_congestion_bounds(self, rw):
        rates, weights = rw
        q = WeightedFairShare(weights).queue_lengths(rates, MU)
        if not np.all(np.isfinite(q)):
            return
        c = weighted_individual_congestion(q, weights)
        total = q.sum()
        big_phi = weights.sum()
        for i in range(q.shape[0]):
            assert c[i] <= total + 1e-9
            assert c[i] <= big_phi * q[i] / weights[i] + 1e-9


class TestWeightedAllocationProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 6), st.floats(0.2, 0.8),
           st.lists(st.floats(0.2, 5.0), min_size=2, max_size=6))
    def test_single_gateway_proportionality(self, n, cap, weights):
        weights = np.array((weights * n)[:n])
        net = single_gateway(n, mu=1.0)
        rates = weighted_max_min_allocation(net, {"g0": cap}, weights)
        assert rates.sum() == pytest.approx(cap)
        assert np.allclose(rates / weights, rates[0] / weights[0])


class TestAsynchronousProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 10_000))
    def test_round_robin_reaches_same_fixed_point(self, n, seed):
        system = FlowControlSystem(single_gateway(n, mu=1.0),
                                   FairShare(), LinearSaturating(),
                                   ProportionalTargetRule(eta=0.8,
                                                          beta=0.5),
                                   style=FeedbackStyle.INDIVIDUAL)
        rng = np.random.default_rng(seed)
        start = rng.uniform(0.02, 0.4 / n, n)
        sync = system.run(start, max_steps=30000, tol=1e-10)
        seq = AsynchronousRunner(system, RoundRobinSchedule()).run(
            start, max_steps=30000 * n, tol=1e-10)
        assert np.allclose(sync.final, seq.final, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 3))
    def test_rates_stay_nonnegative_under_any_delay(self, n, tau):
        system = FlowControlSystem(single_gateway(n, mu=1.0),
                                   FairShare(), LinearSaturating(),
                                   ProportionalTargetRule(eta=1.5,
                                                          beta=0.5),
                                   style=FeedbackStyle.INDIVIDUAL)
        runner = AsynchronousRunner(system, signal_delay=tau)
        traj = runner.run(np.full(n, 0.1), max_steps=300)
        assert np.all(traj.history >= 0.0)
