"""Property-based tests for the dynamics and the quadratic map."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.classify import Regime, classify_tail
from repro.analysis.maps import QuadraticRateMap, orbit, orbit_tail
from repro.core.dynamics import FlowControlSystem, Outcome
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import ProportionalTargetRule, TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import fair_steady_state
from repro.core.topology import single_gateway


class TestDynamicsInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 0.5), min_size=2, max_size=5),
           st.floats(0.05, 0.5), st.floats(0.2, 0.8))
    def test_step_keeps_rates_nonnegative_finite(self, start, eta, beta):
        n = len(start)
        system = FlowControlSystem(single_gateway(n), FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=eta, beta=beta),
                                   style=FeedbackStyle.INDIVIDUAL)
        r = np.array(start)
        for _ in range(50):
            r = system.step(r)
            assert np.all(r >= 0)
            assert np.all(np.isfinite(r))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.floats(0.25, 0.75),
           st.integers(0, 1000))
    def test_individual_feedback_converges_to_waterfill(self, n, beta,
                                                        seed):
        rng = np.random.default_rng(seed)
        system = FlowControlSystem(single_gateway(n), FairShare(),
                                   LinearSaturating(),
                                   ProportionalTargetRule(eta=0.8,
                                                          beta=beta),
                                   style=FeedbackStyle.INDIVIDUAL)
        rho = LinearSaturating().steady_state_utilisation(beta)
        start = rng.uniform(0.01, 0.3, n)
        traj = system.run(start, max_steps=30000, tol=1e-10)
        assert traj.outcome is Outcome.CONVERGED
        fair = fair_steady_state(single_gateway(n), rho)
        assert np.allclose(traj.final, fair, atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 5), st.floats(0.02, 0.45),
           st.integers(0, 1000))
    def test_aggregate_steady_total_independent_of_start(self, n, scale,
                                                         seed):
        rng = np.random.default_rng(seed)
        system = FlowControlSystem(single_gateway(n), FairShare(),
                                   LinearSaturating(),
                                   TargetRule(eta=0.05, beta=0.5),
                                   style=FeedbackStyle.AGGREGATE)
        start = rng.uniform(0, scale, n)
        traj = system.run(start, max_steps=30000, tol=1e-10)
        assert traj.outcome is Outcome.CONVERGED
        assert float(traj.final.sum()) == pytest.approx(0.5, abs=1e-5)


class TestMapInvariants:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.1, 3.0), st.floats(0.05, 0.9),
           st.floats(0.0, 1.5))
    def test_truncated_map_stays_nonnegative(self, a, beta, x0):
        m = QuadraticRateMap(a=a, beta=beta)
        x = x0
        for _ in range(100):
            x = m(x)
            assert x >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.1, 1.9), st.floats(0.05, 0.9))
    def test_stable_gain_converges_to_sqrt_beta(self, alpha, beta):
        # alpha = a sqrt(beta) < 1 guarantees linear stability, but
        # the convergence time diverges like 1/(1 - a sqrt(beta)), so
        # only test gains with a real stability margin — marginally
        # stable maps need far more than `transient` steps to settle
        # within rtol.
        a = alpha / math.sqrt(beta) * 0.99
        m = QuadraticRateMap(a=a, beta=beta)
        if not m.is_linearly_stable or a * math.sqrt(beta) > 0.95:
            return
        tail = orbit_tail(m, x0=m.fixed_point * 1.01, transient=5000,
                          keep=8)
        assert np.allclose(tail, m.fixed_point, rtol=1e-5)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.05, 0.9))
    def test_fixed_point_is_fixed(self, beta):
        m = QuadraticRateMap(a=1.0, beta=beta)
        assert m(m.fixed_point) == pytest.approx(m.fixed_point)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=200, max_size=200),
           st.integers(1, 16))
    def test_classify_periodic_tilings(self, base, period):
        pattern = np.array(base[:period])
        # Make the pattern genuinely period-`period` (distinct values).
        pattern = pattern + np.arange(period)
        tail = np.tile(pattern, 300 // period + 3)
        cls = classify_tail(tail, max_period=32)
        assert cls.regime in (Regime.FIXED_POINT, Regime.PERIODIC)
        assert cls.period <= period
