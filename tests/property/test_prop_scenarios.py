"""Property tests for ScenarioSpec serialisation: ``from_json(to_json(s))
== s`` must hold *exactly* (structural equality on every field, fault
plans and weighted-share weights included) for arbitrary valid specs —
the repro workflow depends on the JSON file being a faithful copy."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (SCENARIO_SCHEMA, ConnectionSpec, FaultPlanSpec,
                             GatewaySpec, InjectorSpec, RuleSpec,
                             ScenarioSpec, SignalSpec)

# Finite, JSON-exact floats: json.dumps/loads round-trips any finite
# float exactly, so the only values excluded are NaN/inf (which the
# strict serialiser rejects by design).
finite = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
small = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False,
                  allow_infinity=False)
name = st.from_regex(r"[a-z][a-z0-9-]{0,11}", fullmatch=True)


@st.composite
def rule_specs(draw):
    kind = draw(st.sampled_from(
        ["target", "proportional-target", "decbit-window", "decbit-rate"]))
    if kind == "binary-aimd":  # pragma: no cover — kept for clarity
        params = {"increase": draw(small), "decrease": draw(small),
                  "threshold": draw(small)}
    else:
        params = {"eta": draw(finite),
                  "beta": draw(st.floats(min_value=0.05, max_value=0.95))}
    return RuleSpec(kind, params)


@st.composite
def injector_specs(draw, n_connections):
    kind = draw(st.sampled_from(["loss", "quantise", "delay", "corrupt"]))
    if kind == "loss":
        conns = draw(st.sets(st.integers(0, n_connections - 1), min_size=1))
        params = {"rate": draw(st.floats(min_value=0.01, max_value=0.9)),
                  "connections": tuple(sorted(conns))}
    elif kind == "quantise":
        params = {"levels": draw(st.integers(2, 64))}
    elif kind == "delay":
        params = {"delay": draw(st.integers(1, 5)),
                  "jitter": draw(st.integers(0, 3))}
    else:
        params = {"rate": draw(st.floats(min_value=0.01, max_value=0.9)),
                  "amplitude": draw(st.floats(min_value=0.01, max_value=1.0))}
    return InjectorSpec(kind, params)


@st.composite
def scenario_specs(draw):
    n_gw = draw(st.integers(1, 3))
    gateways = tuple(GatewaySpec(f"g{i}", draw(finite),
                                 latency=draw(st.floats(0.0, 2.0)))
                     for i in range(n_gw))
    n = draw(st.integers(1, 5))
    weighted = draw(st.booleans())
    if weighted:
        # Weighted fair share requires full crossing.
        paths = [tuple(g.name for g in gateways)] * n
    else:
        paths = [tuple(gateways[j].name for j in sorted(draw(
            st.sets(st.integers(0, n_gw - 1), min_size=1))))
            for _ in range(n)]
    connections = tuple(ConnectionSpec(f"c{i}", paths[i]) for i in range(n))
    homogeneous = draw(st.booleans())
    if homogeneous:
        rules = (draw(rule_specs()),) * n
    else:
        rules = tuple(draw(rule_specs()) for _ in range(n))
    fault_plan = draw(st.none() | st.builds(
        FaultPlanSpec,
        seed=st.integers(0, 2**31),
        injectors=st.lists(injector_specs(n), min_size=1, max_size=3)
        .map(tuple)))
    return ScenarioSpec(
        name=draw(name),
        gateways=gateways,
        connections=connections,
        discipline=("weighted-fair-share" if weighted else
                    draw(st.sampled_from(["fifo", "fair-share"]))),
        signal=draw(st.sampled_from(["linear-saturating", "power-saturating",
                                     "exponential"]).flatmap(
            lambda kind: st.builds(
                SignalSpec, kind=st.just(kind),
                param=(st.just(0.0) if kind == "linear-saturating"
                       else st.floats(min_value=0.5, max_value=3.0))))),
        style=draw(st.sampled_from(["aggregate", "individual"])),
        rules=rules,
        initial_rates=tuple(draw(small) for _ in range(n)),
        weights=tuple(draw(finite) for _ in range(n)) if weighted else None,
        max_steps=draw(st.integers(1, 10**6)),
        tol=draw(st.floats(min_value=1e-14, max_value=1e-3)),
        seed=draw(st.integers(0, 2**31)),
        fault_plan=fault_plan,
    )


@settings(max_examples=150, deadline=None)
@given(scenario_specs())
def test_json_round_trip_is_exact(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=50, deadline=None)
@given(scenario_specs())
def test_round_trip_is_idempotent_text(spec):
    # Serialising the deserialised spec reproduces the byte-identical
    # document: canonical key order makes the JSON file diffable.
    text = spec.to_json()
    assert ScenarioSpec.from_json(text).to_json() == text


@settings(max_examples=50, deadline=None)
@given(scenario_specs())
def test_schema_and_structure_survive(spec):
    data = json.loads(spec.to_json())
    assert data["schema"] == SCENARIO_SCHEMA
    back = ScenarioSpec.from_dict(data)
    assert back.fault_plan == spec.fault_plan
    assert back.weights == spec.weights
    assert hash(back) == hash(spec)
