"""Property-based tests for update schedules and clock models.

Two contracts, fuzzed across the whole schedule family:

* **sweep accounting** — ``participants`` masks average one update per
  connection per ``steps_per_sweep`` window (exactly for the
  deterministic schedules, within the ``round(1/p)`` half-step plus
  sampling noise for the stochastic ones);
* **purity** — masks are a pure function of ``(seed, step)``: querying
  them in any permuted order, with arbitrary out-of-band probes, yields
  bit-identical masks (the property blocked execution relies on).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asynchronous import (BernoulliSchedule, BurstyClock,
                                     ClockSchedule, DriftingClock,
                                     RateMixClock, RoundRobinSchedule,
                                     SynchronousSchedule, UniformClock)

SEEDS = st.integers(0, 2**31 - 1)
RATES = st.floats(0.05, 1.0, allow_nan=False)


@st.composite
def stochastic_schedules(draw):
    kind = draw(st.sampled_from(
        ["bernoulli", "uniform", "mix", "drifting", "bursty"]))
    seed = draw(SEEDS)
    if kind == "bernoulli":
        return BernoulliSchedule(draw(RATES), seed=seed)
    if kind == "uniform":
        return ClockSchedule(UniformClock(rate=draw(RATES), seed=seed))
    if kind == "mix":
        lo = draw(st.floats(0.05, 0.5))
        hi = draw(st.floats(0.5, 1.0))
        frac = draw(st.floats(0.0, 1.0))
        return ClockSchedule(RateMixClock(lo, hi, frac, seed=seed))
    if kind == "drifting":
        base = draw(st.floats(0.3, 0.7))
        amp = draw(st.floats(0.0, 0.25))
        period = draw(st.integers(2, 64))
        return ClockSchedule(DriftingClock(base, amp, period, seed=seed))
    off = draw(st.floats(0.05, 0.5))
    on = draw(st.floats(0.5, 1.0))
    burst = draw(st.integers(1, 16))
    return ClockSchedule(BurstyClock(on, off, burst, seed=seed))


@st.composite
def any_schedules(draw):
    if draw(st.booleans()):
        return draw(st.sampled_from([SynchronousSchedule(),
                                     RoundRobinSchedule()]))
    return draw(stochastic_schedules())


class TestSweepAccounting:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 500))
    def test_synchronous_one_update_per_step(self, n, start):
        sched = SynchronousSchedule()
        assert sched.steps_per_sweep(n) == 1
        for step in range(start, start + 5):
            assert sched.participants(step, n).sum() == n

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 500))
    def test_round_robin_exactly_one_per_sweep(self, n, start):
        sched = RoundRobinSchedule()
        sweep = sched.steps_per_sweep(n)
        assert sweep == n
        window = np.stack([sched.participants(start + k, n)
                           for k in range(sweep)])
        # Each sweep window updates every connection exactly once.
        assert np.array_equal(window.sum(axis=0), np.ones(n))

    @settings(max_examples=40, deadline=None)
    @given(stochastic_schedules(), st.integers(2, 8))
    def test_one_update_per_connection_per_sweep_on_average(
            self, sched, n):
        sweep = sched.steps_per_sweep(n)
        assert sweep >= 1
        # Enough sweeps to average out sampling noise, burst phases,
        # and drift periods (drift period <= 64).
        steps = max(40 * sweep, 512)
        counts = np.zeros(n)
        for step in range(steps):
            counts += sched.participants(step, n)
        per_sweep = counts.mean() * sweep / steps
        # round(1/p) puts the true mean within half a step of one
        # update per sweep; the window budget keeps noise below ~0.2.
        assert 0.4 <= per_sweep <= 1.75

    @settings(max_examples=40, deadline=None)
    @given(stochastic_schedules(), st.integers(2, 8))
    def test_masks_match_tick_probabilities(self, sched, n):
        if not isinstance(sched, ClockSchedule):
            return
        steps = 600
        counts = np.zeros(n)
        expected = np.zeros(n)
        for step in range(steps):
            counts += sched.participants(step, n)
            expected += sched.clock.tick_rates(step, n)
        # Per-connection empirical tick rate tracks the model's own
        # probabilities (600 coins: 4 sigma < 0.09).
        assert np.all(np.abs(counts - expected) / steps < 0.1)


class TestSchedulePurity:
    @settings(max_examples=60, deadline=None)
    @given(any_schedules(), st.integers(2, 16),
           st.permutations(list(range(12))),
           st.lists(st.integers(0, 100), max_size=8))
    def test_masks_invariant_under_call_history_permutation(
            self, sched, n, order, probes):
        # Reference pass: steps 0..11 in order on a fresh schedule.
        reference = {step: sched.participants(step, n)
                     for step in range(12)}
        # Adversarial pass: out-of-band probes, then the same steps in
        # a permuted order — every mask must replay bit-identically.
        for step in probes:
            sched.participants(step, n)
        for step in order:
            again = sched.participants(step, n)
            assert np.array_equal(again, reference[step])

    @settings(max_examples=60, deadline=None)
    @given(stochastic_schedules(), st.integers(2, 16))
    def test_identically_built_schedules_agree(self, sched, n):
        if isinstance(sched, BernoulliSchedule):
            clone = BernoulliSchedule(sched.p, seed=sched.seed)
        else:
            clock = sched.clock
            params = {k: v for k, v in vars(clock).items()
                      if not k.startswith("_")}
            clone = ClockSchedule(type(clock)(**params))
        for step in (0, 1, 7, 63, 1000):
            assert np.array_equal(sched.participants(step, n),
                                  clone.participants(step, n))
