"""Property-based tests (hypothesis) on the queue laws of Section 2.2.

These are the paper's feasibility and structure constraints, checked on
arbitrary stable rate vectors rather than hand-picked examples.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fairshare import (FairShare, cumulative_loads,
                                  fair_share_queues_recursive,
                                  priority_decomposition)
from repro.core.feasibility import (check_prefix_bounds,
                                    check_total_conservation)
from repro.core.fifo import Fifo
from repro.core.math_utils import g
from repro.core.robustness import satisfies_theorem5_condition

MU = 1.0


def stable_rates(min_n=1, max_n=8, max_total=0.95):
    """Rate vectors with total load strictly below capacity."""
    return hnp.arrays(
        dtype=float,
        shape=st.integers(min_n, max_n),
        elements=st.floats(0.0, 0.4, allow_nan=False,
                           allow_infinity=False),
    ).map(lambda v: v * (max_total / max(float(v.sum()), 1.0)))


@st.composite
def any_rates(draw):
    """Rate vectors that may also overload the gateway."""
    n = draw(st.integers(1, 8))
    return np.array([draw(st.floats(0.0, 0.6)) for _ in range(n)])


class TestConservationProperties:
    @settings(max_examples=120, deadline=None)
    @given(stable_rates())
    def test_fifo_conserves_total(self, rates):
        assert check_total_conservation(Fifo(), rates, MU)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates())
    def test_fair_share_conserves_total(self, rates):
        assert check_total_conservation(FairShare(), rates, MU)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates())
    def test_prefix_bounds_hold(self, rates):
        assert check_prefix_bounds(Fifo(), rates, MU)
        assert check_prefix_bounds(FairShare(), rates, MU)

    @settings(max_examples=100, deadline=None)
    @given(any_rates())
    def test_conservation_including_overload(self, rates):
        assert check_total_conservation(FairShare(), rates, MU)


class TestFairShareProperties:
    @settings(max_examples=150, deadline=None)
    @given(any_rates())
    def test_substream_equals_recursion(self, rates):
        direct = FairShare().queue_lengths(rates, MU)
        recursive = fair_share_queues_recursive(rates, MU)
        both_inf = np.isinf(direct) & np.isinf(recursive)
        finite = np.isfinite(direct) & np.isfinite(recursive)
        assert np.all(both_inf | finite)
        assert np.allclose(direct[finite], recursive[finite], atol=1e-9)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates(min_n=2))
    def test_queue_order_follows_rate_order(self, rates):
        q = FairShare().queue_lengths(rates, MU)
        order = np.argsort(rates, kind="stable")
        sorted_q = q[order]
        assert np.all(np.diff(sorted_q) >= -1e-12)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates(min_n=2), st.randoms(use_true_random=False))
    def test_permutation_equivariance(self, rates, rnd):
        perm = list(range(len(rates)))
        rnd.shuffle(perm)
        perm = np.array(perm)
        q = FairShare().queue_lengths(rates, MU)
        q_perm = FairShare().queue_lengths(rates[perm], MU)
        assert np.allclose(q[perm], q_perm, atol=1e-12)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates(), st.floats(0.1, 50.0))
    def test_time_scale_invariance(self, rates, scale):
        q1 = FairShare().queue_lengths(rates, MU)
        q2 = FairShare().queue_lengths(rates * scale, MU * scale)
        assert np.allclose(q1, q2, rtol=1e-9, atol=1e-12)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates(min_n=2), st.integers(0, 7),
           st.floats(0.01, 0.2))
    def test_triangularity_bigger_rates_invisible(self, rates, idx,
                                                  bump):
        """Raising a rate never changes any strictly smaller queue."""
        idx = idx % len(rates)
        q_before = FairShare().queue_lengths(rates, MU)
        bumped = rates.copy()
        bumped[idx] += bump
        q_after = FairShare().queue_lengths(bumped, MU)
        smaller = rates < rates[idx] - 1e-12
        assert np.allclose(q_before[smaller], q_after[smaller],
                           atol=1e-10)

    @settings(max_examples=120, deadline=None)
    @given(any_rates())
    def test_theorem5_condition_always_holds(self, rates):
        assert satisfies_theorem5_condition(FairShare(), rates, MU)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates())
    def test_decomposition_rows_sum_to_rates(self, rates):
        decomp = priority_decomposition(rates)
        assert np.allclose(decomp.sum(axis=1), rates, atol=1e-12)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates())
    def test_cumulative_loads_monotone_and_bounded(self, rates):
        sigma = cumulative_loads(rates, MU)
        assert np.all(np.diff(sigma) >= -1e-12)
        if len(rates):
            assert sigma[-1] == pytest.approx(rates.sum() / MU)


class TestCrossDiscipline:
    @settings(max_examples=120, deadline=None)
    @given(stable_rates(min_n=2))
    def test_fifo_and_fs_share_total(self, rates):
        total_fifo = Fifo().total_queue(rates, MU)
        total_fs = FairShare().total_queue(rates, MU)
        assert total_fifo == pytest.approx(total_fs, abs=1e-9)

    @settings(max_examples=120, deadline=None)
    @given(stable_rates(min_n=2))
    def test_fs_never_gives_smallest_more_queue_than_fifo(self, rates):
        """Fair Share protects the smallest connection relative to FIFO."""
        if np.all(rates == 0):
            return
        small = int(np.argmin(np.where(rates > 0, rates, np.inf)))
        if rates[small] == 0:
            return
        q_fs = FairShare().queue_lengths(rates, MU)[small]
        q_fifo = Fifo().queue_lengths(rates, MU)[small]
        assert q_fs <= q_fifo + 1e-9
