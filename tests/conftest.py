"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import (FairShare, Fifo, LinearSaturating,
                        PreemptivePriority, single_gateway)


@pytest.fixture
def fifo():
    return Fifo()


@pytest.fixture
def fair_share():
    return FairShare()


@pytest.fixture(params=["fifo", "fair-share", "priority"])
def any_discipline(request):
    """Every analytic service discipline, parametrised."""
    if request.param == "fifo":
        return Fifo()
    if request.param == "fair-share":
        return FairShare()
    return PreemptivePriority([0, 1, 2, 3])


@pytest.fixture
def rates4():
    """A generic stable 4-connection rate vector at mu = 1."""
    return np.array([0.1, 0.25, 0.3, 0.2])


@pytest.fixture
def linear_signal():
    return LinearSaturating()


@pytest.fixture
def gateway3():
    return single_gateway(3, mu=1.0)
