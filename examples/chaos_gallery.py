#!/usr/bin/env python3
"""The Section 3.3 route to chaos, end to end.

The paper notes that changing the signalling function turns the
aggregate-feedback update into ``x <- x + eta N (beta - x^2)`` and that,
as ``N`` grows at fixed ``eta``, the dynamics walk from a stable fixed
point through period doubling into chaos.  This example:

1. verifies the reduction — the full N-connection system started
   symmetrically tracks the scalar map exactly;
2. prints orbits in the three regimes;
3. renders an ASCII bifurcation diagram and the Lyapunov exponent
   across the gain axis;
4. adds *feedback chaos to the chaos*: a seeded fault plan degrades the
   signal path of the chaotic system and shows the perturbed orbit is
   still exactly reproducible (chaos in the dynamics, determinism in
   the harness).

Run:  python examples/chaos_gallery.py
"""

import numpy as np

from repro import (FeedbackStyle, Fifo, FlowControlSystem,
                   PowerSaturating, TargetRule, parse_fault_spec,
                   single_gateway)
from repro.analysis import (QuadraticRateMap, classify_tail,
                            lyapunov_exponent, orbit, orbit_tail,
                            scatter_chart)

BETA = 0.25


def verify_reduction():
    n, eta = 8, 0.2
    system = FlowControlSystem(single_gateway(n, mu=1.0), Fifo(),
                               PowerSaturating(p=2.0),
                               TargetRule(eta=eta, beta=BETA),
                               style=FeedbackStyle.AGGREGATE)
    the_map = QuadraticRateMap.from_system(n, eta, BETA)
    r = np.full(n, 0.02)
    x = n * r[0]
    worst = 0.0
    for _ in range(100):
        r = system.step(r)
        x = the_map(x)
        worst = max(worst, abs(float(np.sum(r)) - x))
    print(f"reduction check: max |sum(r) - x| over 100 steps = "
          f"{worst:.2e}")
    print()


def show_regimes():
    for a, label in ((1.5, "stable"), (2.3, "oscillatory (period 2)"),
                     (2.62, "chaotic")):
        the_map = QuadraticRateMap(a=a, beta=BETA,
                                   truncate=(a < 2.55))
        tail = orbit_tail(the_map, 0.4, transient=3000, keep=256)
        cls = classify_tail(tail)
        lam = lyapunov_exponent(the_map, the_map.derivative, 0.4,
                                steps=5000, discard=1000)
        sample = np.round(orbit(the_map, 0.4, steps=2006,
                                discard=2000), 4)
        print(f"a = eta*N = {a}:  {cls}  (lyapunov {lam:+.3f})")
        print(f"  orbit tail: {sample}")
    print()


def bifurcation_ascii():
    gains = np.linspace(1.2, 2.64, 140)
    xs, ys = [], []
    for a in gains:
        the_map = QuadraticRateMap(a=float(a), beta=BETA, truncate=False)
        tail = orbit_tail(the_map, 0.4, transient=1500, keep=60)
        xs.extend([a] * len(tail))
        ys.extend(tail.tolist())
    print(scatter_chart(xs, ys, width=76, height=20,
                        title="bifurcation diagram: attractor of "
                              "x <- x + a(0.25 - x^2)  vs  a = eta*N",
                        y_label="attractor samples"))
    print()
    print("fixed point up to a = 2 (= 1/sqrt(beta)), then period")
    print("doubling, then the chaotic band near a ~ 2.6 — the paper's")
    print("'stable behavior, to oscillatory behavior, to chaotic")
    print("behavior' as N increases.")


def faulty_feedback_orbit():
    # The chaotic regime (a = eta*N = 2.62) with a broken signal path:
    # 30% of signals lost (stale b), the rest quantised to 8 levels.
    n, eta = 8, 2.62 / 8
    system = FlowControlSystem(single_gateway(n, mu=1.0), Fifo(),
                               PowerSaturating(p=2.0),
                               TargetRule(eta=eta, beta=BETA),
                               style=FeedbackStyle.AGGREGATE)
    plan = parse_fault_spec("loss=0.3,quantise=8,seed=42")
    start = np.full(n, 0.05)
    a = system.run(start, max_steps=400, faults=plan)
    b = system.run(start, max_steps=400, faults=plan)
    assert np.array_equal(a.history, b.history)
    assert a.fault_events == b.fault_events
    clean = system.run(start, max_steps=400)
    print("chaotic system with a faulty feedback path "
          "(loss=0.3, quantise=8):")
    print(f"  {len(a.fault_events)} fault events injected, replay "
          f"bit-identical: True")
    print(f"  total-rate tail, clean : "
          f"{np.round(clean.history[-4:].sum(axis=1), 4)}")
    print(f"  total-rate tail, faulty: "
          f"{np.round(a.history[-4:].sum(axis=1), 4)}")
    print("  (a chaotic orbit, perturbed — but the *experiment* stays")
    print("   deterministic: same plan, same seed, same trajectory)")


def main():
    verify_reduction()
    show_regimes()
    bifurcation_ascii()
    print()
    faulty_feedback_orbit()


if __name__ == "__main__":
    main()
