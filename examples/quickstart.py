#!/usr/bin/env python3
"""Quickstart: feedback flow control on one shared gateway.

Builds the paper's recommended design — TSI *individual* feedback with
*Fair Share* gateways — for four connections sharing a unit-rate
gateway, runs the synchronous dynamics from an arbitrary start, and
compares the converged allocation against the closed-form prediction
(water-filling at the steady utilisation).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (FairShare, FeedbackStyle, FlowControlSystem,
                   LinearSaturating, TargetRule, predicted_steady_state,
                   single_gateway)
from repro.analysis import line_chart


def main():
    network = single_gateway(4, mu=1.0)
    system = FlowControlSystem(
        network,
        discipline=FairShare(),
        signal_fn=LinearSaturating(),       # B(C) = C / (C + 1)
        rules=TargetRule(eta=0.1, beta=0.5),  # f = eta (beta - b)
        style=FeedbackStyle.INDIVIDUAL,
    )

    start = np.array([0.05, 0.10, 0.30, 0.55])
    trajectory = system.run(start)

    print("outcome:        ", trajectory.outcome.value)
    print("steps:          ", trajectory.steps)
    print("final rates:    ", np.round(trajectory.final, 6))
    print("prediction:     ", predicted_steady_state(system))
    print("signals at end: ", np.round(system.signals(trajectory.final), 4))
    print()
    print(line_chart(trajectory.history[:, 3],
                     title="rate of connection 3 (started greedy at "
                           "0.55) vs step",
                     y_label="sending rate"))
    print()
    print("Every connection converges to mu * rho_ss / N = 0.125: the")
    print("unique fair steady state of Theorem 3, whatever the start.")


if __name__ == "__main__":
    main()
