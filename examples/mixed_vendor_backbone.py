#!/usr/bin/env python3
"""Scenario: a backbone link shared by hosts from different vendors.

The paper's robustness question in its practical form: four sources
share one gateway, but their TCP stacks ship different flow-control
tunings — their target congestion levels range from greedy (tolerates
b = 0.7) to meek (backs off already at b = 0.4).  What does each host
actually get under the three gateway/feedback designs?

The run reproduces Theorem 5's verdict:

* aggregate feedback — the meek host is completely shut out;
* individual feedback + FIFO — everyone survives, but the meek host
  falls below the reservation floor;
* individual feedback + Fair Share — every host gets at least the
  throughput a reservation network would have guaranteed it.

Run:  python examples/mixed_vendor_backbone.py
"""

import numpy as np

from repro import (FairShare, FeedbackStyle, Fifo, FlowControlSystem,
                   LinearSaturating, TargetRule, single_gateway)
from repro.core.robustness import reservation_floor_heterogeneous

BETAS = (0.7, 0.6, 0.5, 0.4)          # greed spectrum, greedy -> meek
ETA = 0.04


def run_design(name, discipline, style):
    network = single_gateway(len(BETAS), mu=1.0)
    rules = [TargetRule(eta=ETA, beta=b) for b in BETAS]
    system = FlowControlSystem(network, discipline, LinearSaturating(),
                               rules, style=style)
    trajectory = system.run(np.full(len(BETAS), 0.1), max_steps=80000,
                            tol=1e-11)
    final = trajectory.final

    signal = LinearSaturating()
    rho = [signal.steady_state_utilisation(b) for b in BETAS]
    floors = reservation_floor_heterogeneous(network, rho)

    print(f"--- {name} ---")
    print(f"{'host':>6} {'target b':>9} {'rate':>9} {'floor':>9} "
          f"{'rate/floor':>11}")
    for i, beta in enumerate(BETAS):
        ratio = final[i] / floors[i]
        print(f"{i:>6} {beta:>9.2f} {final[i]:>9.4f} {floors[i]:>9.4f} "
              f"{ratio:>11.3f}")
    print(f"outcome: {trajectory.outcome.value}; worst floor ratio: "
          f"{float(np.min(final / floors)):.4f}")
    print()


def main():
    print("Mixed-vendor backbone: heterogeneous flow-control tunings\n")
    run_design("aggregate feedback + FIFO", Fifo(),
               FeedbackStyle.AGGREGATE)
    run_design("individual feedback + FIFO", Fifo(),
               FeedbackStyle.INDIVIDUAL)
    run_design("individual feedback + Fair Share", FairShare(),
               FeedbackStyle.INDIVIDUAL)
    print("Fair Share is the only design whose worst floor ratio is >= 1")
    print("(Theorem 5): the gateway protects conservative hosts from")
    print("aggressive ones without any reservation machinery.")


if __name__ == "__main__":
    main()
