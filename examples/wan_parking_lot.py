#!/usr/bin/env python3
"""Scenario: a long transfer crossing a WAN path with cross traffic.

A classic wide-area pattern: one long file transfer traverses four
gateways in series (the parking lot), competing at every hop with local
one-hop cross traffic, over links of different speeds.  Two questions
the paper answers:

1. What is the *fair* allocation?  Theorem 2's water-filling over
   capacities ``rho_ss * mu^a`` — and TSI individual feedback reaches
   exactly that point from any start (Theorem 3), long path or not.
2. What does a deployed *window* algorithm (DECbit-style) do instead?
   Its ``1/d`` increase term penalises the long connection's larger
   round-trip time, skewing the allocation against it (Section 4).

Run:  python examples/wan_parking_lot.py
"""

import numpy as np

from repro import (Connection, FairShare, FeedbackStyle,
                   FlowControlSystem, Gateway, LinearSaturating, Network,
                   TargetRule, fair_steady_state)
from repro.baselines import run_decbit_windows

# Four hops with different speeds and latencies; the long transfer
# crosses them all, one cross connection per hop.
GATEWAYS = [
    Gateway("hop0", mu=1.0, latency=0.5),
    Gateway("hop1", mu=0.8, latency=2.0),   # slow, high-latency segment
    Gateway("hop2", mu=1.5, latency=0.2),
    Gateway("hop3", mu=1.2, latency=0.4),
]
CONNECTIONS = [Connection("long", tuple(g.name for g in GATEWAYS))] + [
    Connection(f"cross{k}", (GATEWAYS[k].name,)) for k in range(4)
]


def model_allocation(network):
    rho_ss = LinearSaturating().steady_state_utilisation(0.5)
    fair = fair_steady_state(network, rho_ss)
    system = FlowControlSystem(network, FairShare(), LinearSaturating(),
                               TargetRule(eta=0.05, beta=0.5),
                               style=FeedbackStyle.INDIVIDUAL)
    reached = system.solve(np.full(network.num_connections, 0.02),
                           max_steps=120000)
    print("TSI individual feedback + Fair Share (the paper's design):")
    print(f"  {'connection':>10} {'fair (constructed)':>19} "
          f"{'reached (dynamics)':>19}")
    for i, name in enumerate(network.connection_names):
        print(f"  {name:>10} {fair[i]:>19.4f} {reached[i]:>19.4f}")
    print("  -> the long transfer gets its bottleneck's equal share;")
    print("     path length and latency do not penalise it.\n")


def decbit_allocation(network):
    result = run_decbit_windows(network,
                                np.ones(network.num_connections),
                                steps=600)
    means = result.mean_rates(150)
    print("DECbit-style window algorithm (Section 4 baseline):")
    for i, name in enumerate(network.connection_names):
        print(f"  {name:>10} mean rate {means[i]:.4f}")
    long_rate = means[0]
    local = [means[k] for k in range(1, 5)]
    print(f"  -> long-transfer rate {long_rate:.4f} vs one-hop rivals "
          f"{np.round(local, 4)};")
    print("     the 1/d window growth taxes the long round trip "
          "(latency unfairness).")


def main():
    network = Network(GATEWAYS, CONNECTIONS)
    model_allocation(network)
    decbit_allocation(network)


if __name__ == "__main__":
    main()
