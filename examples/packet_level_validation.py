#!/usr/bin/env python3
"""Packet-level sanity check: does the model's algebra survive contact
with an event-driven M/M/1 system and delayed, measured feedback?

Part 1 runs the discrete-event simulator at fixed rates and compares
the time-averaged per-connection occupancies against the analytic FIFO
and Fair Share queue laws of Section 2.2.

Part 2 closes the loop: sources apply the TSI target rule to congestion
signals *measured* from windowed queue averages (no instant
equilibration, no synchronous oracle), and still settle at the fair
point the model predicts.

Run:  python examples/packet_level_validation.py
"""

import numpy as np

from repro import (FairShare, FeedbackStyle, Fifo, LinearSaturating,
                   TargetRule, fair_steady_state, single_gateway)
from repro.simulation import run_closed_loop, validate_single_gateway


def open_loop():
    rates = [0.1, 0.2, 0.25, 0.15]
    print("open loop: fixed Poisson rates", rates, "at mu = 1.0\n")
    for kind, law in (("fifo", Fifo()), ("fair-share", FairShare())):
        result = validate_single_gateway(rates, 1.0, kind,
                                         horizon=20000.0, warmup=2000.0,
                                         seed=42)
        print(f"  {kind:12s} expected Q: "
              f"{np.round(result.expected, 3)}")
        print(f"  {'':12s} measured Q: "
              f"{np.round(result.measured, 3)}  "
              f"(worst rel err {result.worst_relative_error:.3f})")
    print()


def closed_loop():
    network = single_gateway(3, mu=1.0)
    fair = fair_steady_state(network, 0.5)
    print("closed loop: 3 sources, individual feedback, Fair Share,")
    print("signals measured over 400-time-unit control windows\n")
    result = run_closed_loop(network, TargetRule(eta=0.05, beta=0.5),
                             LinearSaturating(),
                             style=FeedbackStyle.INDIVIDUAL,
                             discipline_kind="fair-share",
                             initial_rates=[0.05, 0.2, 0.4],
                             control_interval=400.0, n_steps=50,
                             seed=7)
    settled = result.tail_mean_rates(10)
    print(f"  model's fair point:   {np.round(fair, 4)}")
    print(f"  settled mean rates:   {np.round(settled, 4)}")
    print(f"  measured throughput:  "
          f"{np.round(result.final_throughput, 4)}")
    print(f"  measured delays:      {np.round(result.final_delays, 3)}")
    print()
    print("The idealised synchronous model and the packet system agree:")
    print("the 'instant equilibration' assumption of Section 2.1 is a")
    print("good approximation once control intervals exceed the queue")
    print("relaxation time.")


def main():
    open_loop()
    closed_loop()


if __name__ == "__main__":
    main()
