#!/usr/bin/env python3
"""Extensions in action: weighted Fair Share and asynchronous updates.

Part 1 — a video trunk (weight 4) and two best-effort hosts (weight 1)
share a gateway.  Weighted Fair Share plus the weighted individual
congestion measure steers TSI feedback to a 4:1:1 split, and keeps the
trunk at its weighted reservation floor even when the best-effort hosts
run greedier flow control.

Part 2 — the paper's Section 2.5 caveat, answered: the aggregate-
feedback configuration that *diverges* under synchronous updates
(``eta N = 3.6 > 2``) converges under round-robin updating, while even
a synchronously-stable gain is destabilised by one step of signal
staleness.

Run:  python examples/weighted_and_async.py
"""

import numpy as np

from repro import (AsynchronousRunner, FeedbackStyle, Fifo,
                   FlowControlSystem, LinearSaturating,
                   RoundRobinSchedule, TargetRule, WeightedFairShare,
                   fair_steady_state, single_gateway,
                   weighted_max_min_allocation)


def weighted_demo():
    print("=== weighted Fair Share: a 4:1:1 service-level split ===\n")
    phi = np.array([4.0, 1.0, 1.0])
    network = single_gateway(3, mu=1.0)
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(0.5)

    target = weighted_max_min_allocation(network, {"g0": rho_ss}, phi)
    system = FlowControlSystem(network, WeightedFairShare(phi), signal,
                               TargetRule(eta=0.05, beta=0.5),
                               style=FeedbackStyle.INDIVIDUAL,
                               weights=phi)
    reached = system.solve(np.array([0.05, 0.05, 0.05]),
                           max_steps=60000)
    print(f"  weights:           {phi}")
    print(f"  weighted fair:     {np.round(target, 4)}")
    print(f"  dynamics reach:    {np.round(reached, 4)}")

    # Best-effort hosts turn greedy (higher target signal): the trunk
    # still holds its weighted floor.
    greedy = FlowControlSystem(
        network, WeightedFairShare(phi), signal,
        [TargetRule(eta=0.05, beta=0.4),      # the trunk, conservative
         TargetRule(eta=0.05, beta=0.65),     # greedy best-effort
         TargetRule(eta=0.05, beta=0.65)],
        style=FeedbackStyle.INDIVIDUAL, weights=phi)
    final = greedy.run(np.full(3, 0.05), max_steps=80000).final
    floor = signal.steady_state_utilisation(0.4) * 1.0 * phi[0] / phi.sum()
    print(f"  under greedy rivals the trunk keeps {final[0]:.4f} "
          f">= weighted floor {floor:.4f}\n")


def async_demo():
    print("=== asynchrony vs the 1 - eta*N instability ===\n")
    n, eta = 12, 0.3
    network = single_gateway(n, mu=1.0)
    system = FlowControlSystem(network, Fifo(), LinearSaturating(),
                               TargetRule(eta=eta, beta=0.5),
                               style=FeedbackStyle.AGGREGATE)
    fair = fair_steady_state(network, 0.5)
    rng = np.random.default_rng(3)
    start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(n)), 0, None)

    sync = system.run(start, max_steps=5000)
    seq = AsynchronousRunner(system, RoundRobinSchedule()).run(
        start, max_steps=60000)
    print(f"  eta*N = {eta * n}:")
    print(f"    synchronous (the model):   {sync.outcome.value}")
    print(f"    round-robin (one by one):  {seq.outcome.value}")

    mild = FlowControlSystem(single_gateway(4, mu=1.0), Fifo(),
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=0.5),
                             style=FeedbackStyle.AGGREGATE)
    fair4 = fair_steady_state(single_gateway(4), 0.5)
    start4 = np.clip(fair4 * (1 + 1e-3 * rng.standard_normal(4)), 0,
                     None)
    fresh = AsynchronousRunner(mild, signal_delay=0).run(start4,
                                                         max_steps=8000)
    stale = AsynchronousRunner(mild, signal_delay=1).run(start4,
                                                         max_steps=8000)
    print(f"  eta*N = {eta * 4} with signal staleness:")
    print(f"    delay 0: {fresh.outcome.value};  delay 1: "
          f"{stale.outcome.value}")
    print()
    print("  Synchrony is pessimistic (sequential updates tame the")
    print("  overshoot) but delay-freeness is optimistic (one stale")
    print("  step halves the tolerable gain) — the two halves of the")
    print("  paper's Section 2.5 caveat.")


def main():
    weighted_demo()
    async_demo()


if __name__ == "__main__":
    main()
