"""X1 (extension) — asynchronous schedules vs synchronous instability."""

from conftest import run_once
from repro.experiments import run_x1_asynchrony


def test_x1_asynchrony(benchmark):
    result = run_once(benchmark, run_x1_asynchrony, n_values=(4, 8, 12))
    result.require()
