"""Microbenchmark for the fast packet-simulation kernel.

Standalone (not collected by pytest): times the struct-of-arrays
kernel (``engine="fast"``) against the legacy object engine on

* a FIFO closed-loop-style workload (events/sec, the kernel's home
  turf),
* the full F12 substrate-validation experiment end to end,
* and the warm-start fixed-point cache (iteration counts of an
  F7-style scan, cold vs continuation+memo),

verifies the outputs agree (bit-identical simulator statistics,
identical experiment rows, identical fixed points), and writes the
numbers to ``BENCH_sim.json``.

Methodology note: the per-event cost of either engine swings by 2x+
with machine noise, so single timings are meaningless.  Every speedup
here is the **median of per-pair ratios** over interleaved
legacy/fast runs — each ratio compares two adjacent runs, so slow
spells hit both engines alike.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim_kernel.py [--quick]

The acceptance targets are >= 5x events/sec on the FIFO closed-loop
benchmark, >= 2x end to end on F12, and >= 1.5x warm-start iteration
savings (quick mode shrinks the workloads and judges against the
lower ``QUICK_TARGETS``).
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.math_utils import as_rate_vector
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.steadystate import (FixedPointCache, _damped_solve,
                                    continuation_scan)
from repro.core.topology import single_gateway
from repro.experiments.exp_f12_sim_validation import run_f12_sim_validation
from repro.simulation.network_sim import NetworkSimulation

#: Full-scale minimum speedups (the committed BENCH_sim.json targets).
TARGETS = {"fifo_events_speedup_min": 5.0,
           "f12_speedup_min": 2.0,
           "warm_start_savings_min": 1.5}

#: Quick-mode floors: small workloads amortise less setup, so the
#: speedups shrink for reasons unrelated to regressions.
QUICK_TARGETS = {"fifo_events_speedup_min": 3.0,
                 "f12_speedup_min": 1.5,
                 "warm_start_savings_min": 1.2}


def _fifo_run(engine, horizon, intervals, seed=11):
    """One FIFO closed-loop-style run: simulate ``intervals`` control
    windows with a rate update between each (what the closed loop
    does), returning (events, seconds, statistics snapshot)."""
    net = single_gateway(4, mu=1.0).with_latencies({"g0": 0.5})
    rates = np.array([0.2, 0.2, 0.25, 0.15])
    sim = NetworkSimulation(net, discipline_kind="fifo", seed=seed,
                            initial_rates=rates, engine=engine)
    window = horizon / intervals
    t0 = time.perf_counter()
    for k in range(intervals):
        sim.run_for(window)
        sim.set_rates(rates * (1.0 + 0.1 * ((k % 3) - 1)))
    elapsed = time.perf_counter() - t0
    stats = (sim.mean_queue_lengths()["g0"], sim.throughput(),
             sim.events_processed)
    return sim.events_processed, elapsed, stats


def bench_fifo_kernel(pairs=7, horizon=20000.0, intervals=20):
    """Paired legacy/fast events-per-second on the FIFO workload."""
    ratios = []
    legacy_rate = fast_rate = 0.0
    for p in range(pairs):
        ev_l, t_l, stats_l = _fifo_run("legacy", horizon, intervals)
        ev_f, t_f, stats_f = _fifo_run("fast", horizon, intervals)
        if p == 0:
            assert ev_l == ev_f, "engines processed different event counts"
            assert np.array_equal(stats_l[0], stats_f[0]), \
                "mean queues differ between engines"
            assert np.array_equal(stats_l[1], stats_f[1]), \
                "throughput differs between engines"
        legacy_rate = ev_l / t_l
        fast_rate = ev_f / t_f
        ratios.append(fast_rate / legacy_rate)
    return {"pairs": pairs, "horizon": horizon, "intervals": intervals,
            "legacy_events_per_s": round(legacy_rate),
            "fast_events_per_s": round(fast_rate),
            "pair_ratios": [round(r, 2) for r in sorted(ratios)],
            "speedup": round(statistics.median(ratios), 2)}


def _rows_equal(rows_a, rows_b):
    """Cell-wise equality that treats nan == nan (silent connections
    report nan delays in both engines)."""
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        for cell_a, cell_b in zip(row_a, row_b):
            if cell_a != cell_b and not (
                    isinstance(cell_a, float) and isinstance(cell_b, float)
                    and np.isnan(cell_a) and np.isnan(cell_b)):
                return False
    return True


def bench_f12(pairs=3, horizon=30000.0, warmup=3000.0, loop_steps=50,
              loop_interval=400.0):
    """Paired end-to-end timings of the F12 experiment."""
    kwargs = dict(horizon=horizon, warmup=warmup, loop_steps=loop_steps,
                  loop_interval=loop_interval)
    ratios = []
    t_legacy = t_fast = 0.0
    for p in range(pairs):
        t0 = time.perf_counter()
        legacy = run_f12_sim_validation(engine="legacy", **kwargs)
        t_legacy = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = run_f12_sim_validation(engine="auto", **kwargs)
        t_fast = time.perf_counter() - t0
        if p == 0 and not _rows_equal(legacy.rows, fast.rows):
            raise AssertionError("F12 rows differ between engines")
        ratios.append(t_legacy / t_fast)
    return {"pairs": pairs, "horizon": horizon, "loop_steps": loop_steps,
            "legacy_s": round(t_legacy, 4), "fast_s": round(t_fast, 4),
            "pair_ratios": [round(r, 2) for r in sorted(ratios)],
            "speedup": round(statistics.median(ratios), 2)}


def bench_warm_start(points=24, passes=2, n=6, eta=0.05, tol=1e-10):
    """Iteration counts of an F7-style fixed-point scan, cold vs warm.

    The workload solves the fair point of a TSI Fair Share system over
    a ``beta`` grid, ``passes`` times (figures re-run their scans).
    Cold starts every solve from the same rough guess; warm goes
    through :class:`~repro.core.steadystate.FixedPointCache`, so each
    point continues from its neighbour's fixed point and the second
    pass is pure memo hits.  The fixed points are verified identical.
    """
    net = single_gateway(n, mu=1.0)
    signal = LinearSaturating()
    betas = np.linspace(0.35, 0.65, points)
    systems = [FlowControlSystem(net, FairShare(), signal,
                                 TargetRule(eta=eta, beta=float(b)),
                                 style=FeedbackStyle.INDIVIDUAL)
               for b in betas]
    x0 = np.full(n, 0.02)

    cold_total = 0
    cold_rates = []
    for _ in range(passes):
        cold_rates = []
        for system in systems:
            rates, iters = _damped_solve(
                system, as_rate_vector(x0, n=n), 5000, tol, 1.0)
            cold_total += iters
            cold_rates.append(rates)

    cache = FixedPointCache()
    warm_results = []
    for _ in range(passes):
        warm_results = continuation_scan(systems, x0, tol=tol,
                                         max_steps=5000, cache=cache)
    warm_total = cache.iterations
    for cold, warm in zip(cold_rates, warm_results):
        if not np.allclose(cold, warm.rates, atol=1e-8):
            raise AssertionError("warm-started fixed point differs")
    return {"points": points, "passes": passes,
            "cold_iterations": cold_total,
            "warm_iterations": warm_total,
            "cache_hits": cache.hits, "cache_misses": cache.misses,
            "speedup": round(cold_total / max(1, warm_total), 2)}


def run_benchmarks(quick=False):
    if quick:
        fifo = bench_fifo_kernel(pairs=3, horizon=4000.0, intervals=8)
        f12 = bench_f12(pairs=1, horizon=4000.0, warmup=400.0,
                        loop_steps=10, loop_interval=200.0)
        warm = bench_warm_start(points=12, passes=2)
    else:
        fifo = bench_fifo_kernel()
        f12 = bench_f12()
        warm = bench_warm_start()
    return {"fifo_closed_loop": fifo, "f12_end_to_end": f12,
            "warm_start": warm}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="output JSON path (default: BENCH_sim.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, judged against the quick "
                             "floors (no JSON rewrite by default)")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    fifo, f12, warm = (results["fifo_closed_loop"],
                       results["f12_end_to_end"], results["warm_start"])
    print(f"fifo kernel: legacy {fifo['legacy_events_per_s']} ev/s, fast "
          f"{fifo['fast_events_per_s']} ev/s -> {fifo['speedup']}x "
          f"(median of {fifo['pairs']} pairs)")
    print(f"f12 e2e    : legacy {f12['legacy_s']}s, fast {f12['fast_s']}s "
          f"-> {f12['speedup']}x")
    print(f"warm start : {warm['cold_iterations']} cold vs "
          f"{warm['warm_iterations']} warm iterations -> "
          f"{warm['speedup']}x")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (fifo["speedup"] >= targets["fifo_events_speedup_min"]
          and f12["speedup"] >= targets["f12_speedup_min"]
          and warm["speedup"] >= targets["warm_start_savings_min"])
    results["targets"] = dict(TARGETS)
    results["quick_targets"] = dict(QUICK_TARGETS)
    results["targets_met"] = ok
    if not args.quick:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out} (targets met: {ok})")
    else:
        print(f"quick floors met: {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
