"""F8 — Section 3.4: aggregate feedback shuts out the meek source."""

from conftest import run_once
from repro.experiments import run_f8_heterogeneity


def test_f8_heterogeneity_shutdown(benchmark):
    result = run_once(benchmark, run_f8_heterogeneity, steps=5000)
    result.require()
    # The trajectory rows show rate_meek collapsing monotonically.
    meek = [row[2] for row in result.rows]
    assert meek[-1] < 1e-6 < meek[0]
