"""Benchmark configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md's
experiment index) with parameters sized so a full `pytest benchmarks/
--benchmark-only` run finishes in minutes.  Every benchmark asserts the
experiment's shape checks — the qualitative conclusions of the paper —
on the produced result.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiment harnesses are deterministic and internally iterate
    thousands of steps, so a single round gives a stable timing without
    multiplying the suite's wall-clock by pytest-benchmark's default
    calibration.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
