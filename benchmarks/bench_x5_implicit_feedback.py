"""X5 (extension) — implicit drop-based feedback and buffer policies."""

from conftest import run_once
from repro.experiments import run_x5_implicit_feedback


def test_x5_implicit_feedback(benchmark):
    result = run_once(benchmark, run_x5_implicit_feedback, n_steps=100)
    result.require()
