"""X2 (extension) — feedback delay shrinks the stable gain."""

from conftest import run_once
from repro.experiments import run_x2_feedback_delay


def test_x2_feedback_delay(benchmark):
    result = run_once(benchmark, run_x2_feedback_delay,
                      gains=(0.05, 0.3), delays=(0, 1, 4))
    result.require()
