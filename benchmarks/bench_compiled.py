"""Microbenchmark for the compiled backend tier.

Standalone (not collected by pytest): times the compiled hot paths
against the fastest pre-existing implementations on

* the FIFO closed-loop workload from ``bench_sim_kernel.py`` —
  ``engine="compiled"`` (the runtime-built C event loop) vs
  ``engine="fast"`` (the numpy struct-of-arrays kernel, the previous
  champion), in events/sec,
* the Fair Share queue-law microbench — the compiled
  ``fs_queue_batch`` kernel vs the numpy ``sorted`` pipeline on a
  ``(64, 512)`` rate batch,

verifies bit-identical outputs on every pair, and writes the numbers
to ``BENCH_compiled.json``.

Methodology matches ``bench_sim_kernel.py``: every speedup is the
**median of per-pair ratios** over interleaved runs so slow spells hit
both implementations alike.  Compilation cost is kept out of the
measured runs — :func:`repro.backends.compiled.warmup` builds (or
cache-loads) the C library up front, and the per-phase Timer spans
(``compile.cext`` / ``compile.numba`` vs ``run.fifo``) are recorded in
the provenance block so the JSON separates JIT/C-build warmup from
steady-state throughput.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_compiled.py [--quick]

The acceptance targets are >= 3x events/sec over the fast kernel on
the FIFO closed loop and >= 2x on the Fair Share queue-law microbench
(quick mode shrinks the workloads and judges against the lower
``QUICK_TARGETS``).  When no compiled tier can be built at all (no C
compiler, no numba) the benchmark prints a notice and exits 0 — the
compiled tier is optional by contract.
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

from bench_sim_kernel import _fifo_run

from repro import backends
from repro.backends import compiled
from repro.core.fairshare import FairShare

#: Full-scale minimum speedups (the committed BENCH_compiled.json
#: targets): compiled C event loop vs the numpy fast kernel, and the
#: compiled Fair Share queue law vs the numpy sorted pipeline.
TARGETS = {"compiled_fifo_speedup_min": 3.0,
           "fs_queue_law_speedup_min": 2.0}

#: Quick-mode floors: small workloads amortise less per-call overhead
#: (the compiled engine pays a python<->C marshalling toll per
#: ``run_for`` window), so the speedups shrink for reasons unrelated
#: to regressions.
QUICK_TARGETS = {"compiled_fifo_speedup_min": 2.0,
                 "fs_queue_law_speedup_min": 1.5}


def bench_compiled_fifo(pairs=7, horizon=20000.0, intervals=20):
    """Paired fast/compiled events-per-second on the FIFO closed-loop
    workload (same workload the fast-vs-legacy benchmark uses)."""
    ratios = []
    fast_rate = compiled_rate = 0.0
    for p in range(pairs):
        ev_f, t_f, stats_f = _fifo_run("fast", horizon, intervals)
        ev_c, t_c, stats_c = _fifo_run("compiled", horizon, intervals)
        if p == 0:
            assert ev_f == ev_c, "engines processed different event counts"
            assert np.array_equal(stats_f[0], stats_c[0]), \
                "mean queues differ between engines"
            assert np.array_equal(stats_f[1], stats_c[1]), \
                "throughput differs between engines"
        fast_rate = ev_f / t_f
        compiled_rate = ev_c / t_c
        ratios.append(compiled_rate / fast_rate)
    return {"pairs": pairs, "horizon": horizon, "intervals": intervals,
            "fast_events_per_s": round(fast_rate),
            "compiled_events_per_s": round(compiled_rate),
            "pair_ratios": [round(r, 2) for r in sorted(ratios)],
            "speedup": round(statistics.median(ratios), 2)}


def bench_fs_queue_law(pairs=7, members=64, n=512, reps=30, seed=5):
    """Paired sorted/compiled timings of the Fair Share queue law.

    One rep evaluates ``queue_lengths_batch`` on a ``(members, n)``
    batch — the numpy ``sorted`` pipeline vs the compiled kernel
    (``method="compiled"``), proven bit-identical on the first pair.
    """
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.0, 2.0 / n, size=(members, n))
    rates[0, :8] = 0.0                      # idle sources
    rates[1] = 2.0 / n                      # overloaded row
    discipline = FairShare()

    def run(method):
        t0 = time.perf_counter()
        for _ in range(reps):
            out = discipline.queue_lengths_batch(rates, mu=1.0,
                                                 method=method)
        return out, time.perf_counter() - t0

    ratios = []
    sorted_s = compiled_s = 0.0
    for p in range(pairs):
        out_s, sorted_s = run("sorted")
        out_c, compiled_s = run("compiled")
        if p == 0:
            assert np.array_equal(out_s, out_c), \
                "compiled queue law differs from the sorted pipeline"
        ratios.append(sorted_s / compiled_s)
    return {"pairs": pairs, "members": members, "n": n, "reps": reps,
            "sorted_s": round(sorted_s, 4),
            "compiled_s": round(compiled_s, 4),
            "pair_ratios": [round(r, 2) for r in sorted(ratios)],
            "speedup": round(statistics.median(ratios), 2)}


def provenance():
    """Backend identity plus the per-phase compile/run Timer spans."""
    timers = compiled.metrics().snapshot()["timers"]
    return {"backend": backends.active().name,
            "kernel_tier": compiled.tier(),
            "fifo_engine": ("cext" if compiled.fifo_lib() is not None
                            else "python"),
            "timers": {name: {"total_seconds": round(t["total_seconds"],
                                                     4),
                              "count": t["count"]}
                       for name, t in timers.items()}}


def run_benchmarks(quick=False):
    compiled.warmup()
    if quick:
        fifo = bench_compiled_fifo(pairs=3, horizon=4000.0, intervals=8)
        fs = bench_fs_queue_law(pairs=3, members=16, n=256, reps=10)
    else:
        fifo = bench_compiled_fifo()
        fs = bench_fs_queue_law()
    return {"compiled_fifo": fifo, "fs_queue_law": fs,
            "provenance": provenance()}


def compiled_tier_available() -> bool:
    """Anything to benchmark?  (C event loop or a compiled FS tier.)"""
    return compiled.fifo_lib() is not None or compiled.fs_available()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_compiled.json",
                        help="output JSON path (default: "
                             "BENCH_compiled.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, judged against the quick "
                             "floors (no JSON rewrite by default)")
    args = parser.parse_args(argv)

    if not compiled_tier_available():
        print("compiled tier unavailable (no numba, no C compiler) — "
              "nothing to benchmark; the pure-python fallback serves "
              "all paths")
        return 0

    results = run_benchmarks(quick=args.quick)
    fifo, fs = results["compiled_fifo"], results["fs_queue_law"]
    prov = results["provenance"]
    print(f"fifo loop   : fast {fifo['fast_events_per_s']} ev/s, "
          f"compiled {fifo['compiled_events_per_s']} ev/s -> "
          f"{fifo['speedup']}x (median of {fifo['pairs']} pairs)")
    print(f"fs queue law: sorted {fs['sorted_s']}s, compiled "
          f"{fs['compiled_s']}s for {fs['reps']} reps on "
          f"({fs['members']}, {fs['n']}) -> {fs['speedup']}x")
    spans = ", ".join(f"{name} {t['total_seconds']}s/{t['count']}"
                      for name, t in sorted(prov["timers"].items()))
    print(f"provenance  : tier {prov['kernel_tier']}, fifo engine "
          f"{prov['fifo_engine']}, timers: {spans or 'none'}")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (fifo["speedup"] >= targets["compiled_fifo_speedup_min"]
          and fs["speedup"] >= targets["fs_queue_law_speedup_min"])
    results["targets"] = dict(TARGETS)
    results["quick_targets"] = dict(QUICK_TARGETS)
    results["targets_met"] = ok
    if not args.quick:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out} (targets met: {ok})")
    else:
        print(f"quick floors met: {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
