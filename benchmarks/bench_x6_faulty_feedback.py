"""X6 (extension) — robustness floors under lossy/stale feedback."""

from conftest import run_once
from repro.experiments import run_x6_faulty_feedback


def test_x6_faulty_feedback(benchmark):
    result = run_once(benchmark, run_x6_faulty_feedback, steps=6000,
                      loss_rates=(0.0, 0.5))
    result.require()
