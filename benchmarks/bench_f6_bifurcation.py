"""F6 — Section 3.3: stable -> oscillatory -> chaotic cascade."""

from conftest import run_once
from repro.experiments import run_f6_bifurcation


def test_f6_bifurcation_to_chaos(benchmark):
    result = run_once(benchmark, run_f6_bifurcation,
                      gains=(1.0, 1.9, 2.2, 2.45, 2.62),
                      transient=2500, keep=256)
    result.require()
