"""Chaos-layer benchmarks: the structural-fault path against the clean
trajectory engine.

Standalone (not collected by pytest): the structural chaos layer's
contract is that robustness costs (almost) nothing when you do not use
it, and stays cheap when you do.  Two gated numbers:

* **empty plan** — ``run`` with ``structural=StructuralFaultPlan()``
  vs a plain clean run.  The empty plan must take the clean code path
  (``plan.start`` returns ``None``), so the ratio clean/chaos is ~1.0;
  the finals are verified bit-identical before any number is reported;
* **active ensemble** — ``run_ensemble`` over ``M`` members under a
  periodic jittered :class:`~repro.chaos.CapacityDegradation` +
  :class:`~repro.chaos.GatewayBlackhole` plan vs the clean ensemble.
  Per-step window resolution and the per-damage-signature view cache
  must keep the overhead bounded.  Before timing, a sample of members
  is verified bit-identical to scalar ``run(..., structural=plan,
  fault_member=m)`` replays — the determinism contract the
  fault-determinism oracle asserts per-scenario.

Both numbers are *overhead ratios* (clean time / chaos time), not
speedups: 1.0 means free, the gated floors bound how much the chaos
path may cost.  As in the sibling benchmarks, each gated number is the
median of per-pair ratios over interleaved runs.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick]
        [--check] [--out PATH]

``--quick`` shrinks the workload for CI and judges against the lower
``quick_targets``; ``--check`` additionally compares against the
committed ``BENCH_chaos.json`` floors without rewriting it.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.chaos import (CapacityDegradation, GatewayBlackhole,
                         StructuralFaultPlan)
from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway

#: Interleaved timing pairs per benchmark (gated number = median ratio).
REPEATS = 5

#: Full-scale floors (the committed BENCH_chaos.json targets): the
#: empty plan is the clean code path (ratio ~1.0, floored with noise
#: headroom); the active plan pays per-step window resolution.
TARGETS = {"chaos_empty_plan_ratio_min": 0.7,
           "chaos_active_ensemble_ratio_min": 0.4}

#: Quick-mode floors: tiny workloads put the fixed per-step resolution
#: cost against much less numpy work, so CI judges laxer minima.
QUICK_TARGETS = {"chaos_empty_plan_ratio_min": 0.5,
                 "chaos_active_ensemble_ratio_min": 0.2}


def _system(n):
    net = single_gateway(n, mu=float(n))
    rules = [TargetRule(eta=0.1, beta=0.5) for _ in range(n)]
    return FlowControlSystem(net, FairShare(), LinearSaturating(), rules,
                             style=FeedbackStyle.INDIVIDUAL)


def _active_plan(max_steps):
    """A periodic, jittered degradation + one blackhole window, sized so
    several transitions land inside the step budget."""
    period = max(40, max_steps // 4)
    return StructuralFaultPlan(
        injectors=(
            CapacityDegradation("g0", factor=0.6, start=10,
                                duration=period // 2, period=period,
                                jitter=3),
            GatewayBlackhole("g0", start=max_steps // 2,
                             duration=max(5, max_steps // 20)),
        ),
        seed=13)


def bench_empty_plan(n=64, max_steps=2000, pairs=REPEATS):
    """Scalar run with the empty structural plan vs the clean run."""
    system = _system(n)
    rng = np.random.default_rng(5)
    r0 = rng.uniform(0.05, 0.5, size=n)
    kwargs = dict(max_steps=max_steps, tol=0.0, max_period=8)
    empty = StructuralFaultPlan()
    system.run(r0, **kwargs)  # warm-up

    clean = system.run(r0, **kwargs)
    chaos = system.run(r0, structural=empty, **kwargs)
    if not np.array_equal(clean.final, chaos.final) \
            or chaos.structural_events is not None:
        raise AssertionError(
            "empty structural plan is not bit-identical to the clean run")

    ratios = []
    t_clean = t_chaos = 0.0
    for _ in range(pairs):
        t0 = time.perf_counter()
        system.run(r0, **kwargs)
        t_clean = time.perf_counter() - t0
        t0 = time.perf_counter()
        system.run(r0, structural=empty, **kwargs)
        t_chaos = time.perf_counter() - t0
        ratios.append(t_clean / t_chaos)
    ratios.sort()
    return {"n": n, "max_steps": max_steps, "pairs": pairs,
            "clean_steps_per_s": round(max_steps / t_clean),
            "chaos_steps_per_s": round(max_steps / t_chaos),
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup": round(ratios[len(ratios) // 2], 2)}


def bench_active_ensemble(n=32, members=48, max_steps=400,
                          pairs=REPEATS, verify_members=4):
    """Batched ensemble under an active structural plan vs clean."""
    system = _system(n)
    plan = _active_plan(max_steps)
    rng = np.random.default_rng(9)
    r0 = rng.uniform(0.05, 0.5, size=(members, n))
    kwargs = dict(max_steps=max_steps, tol=0.0, max_period=8,
                  history="none")
    system.run_ensemble(r0[:2], structural=plan, **kwargs)  # warm-up

    ens = system.run_ensemble(r0, structural=plan, **kwargs)
    for m in range(0, members, max(1, members // verify_members)):
        traj = system.run(r0[m], max_steps=max_steps, tol=0.0,
                          max_period=8, structural=plan, fault_member=m)
        if not np.array_equal(ens.finals[m], traj.final):
            raise AssertionError(
                f"structural ensemble member {m} differs from its "
                f"scalar replay")

    ratios = []
    t_clean = t_chaos = 0.0
    for _ in range(pairs):
        t0 = time.perf_counter()
        system.run_ensemble(r0, **kwargs)
        t_clean = time.perf_counter() - t0
        t0 = time.perf_counter()
        system.run_ensemble(r0, structural=plan, **kwargs)
        t_chaos = time.perf_counter() - t0
        ratios.append(t_clean / t_chaos)
    ratios.sort()
    member_steps = members * max_steps
    n_events = len(ens.structural_events) if ens.structural_events else 0
    return {"n": n, "members": members, "max_steps": max_steps,
            "pairs": pairs, "structural_events": n_events,
            "clean_msteps_per_s": round(member_steps / t_clean),
            "chaos_msteps_per_s": round(member_steps / t_chaos),
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup": round(ratios[len(ratios) // 2], 2)}


def run_benchmarks(quick=False):
    if quick:
        empty = bench_empty_plan(n=16, max_steps=500, pairs=3)
        active = bench_active_ensemble(n=8, members=16, max_steps=150,
                                       pairs=3)
    else:
        empty = bench_empty_plan()
        active = bench_active_ensemble()
    return {"empty_plan": empty, "active_ensemble": active}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_chaos.json",
                        help="output JSON path (default: "
                             "BENCH_chaos.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload, judged against the "
                             "quick floors (no JSON rewrite)")
    parser.add_argument("--check", action="store_true",
                        help="judge fresh numbers against the committed "
                             "baseline's floors without rewriting it")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    empty, active = results["empty_plan"], results["active_ensemble"]
    print(f"empty plan     : chaos {empty['chaos_steps_per_s']} vs clean "
          f"{empty['clean_steps_per_s']} steps/s at N={empty['n']} -> "
          f"{empty['speedup']}x of clean throughput")
    print(f"active ensemble: chaos {active['chaos_msteps_per_s']} vs "
          f"clean {active['clean_msteps_per_s']} member-steps/s, "
          f"{active['structural_events']} transitions -> "
          f"{active['speedup']}x of clean throughput")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (empty["speedup"] >= targets["chaos_empty_plan_ratio_min"]
          and active["speedup"]
          >= targets["chaos_active_ensemble_ratio_min"])
    if args.check:
        with open(args.out) as fh:
            committed = json.load(fh)
        floors = (committed["quick_targets"] if args.quick
                  else committed["targets"])
        ok = (empty["speedup"] >= floors["chaos_empty_plan_ratio_min"]
              and active["speedup"]
              >= floors["chaos_active_ensemble_ratio_min"])
        print(f"check vs committed floors: {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1

    if not args.quick:
        payload = dict(results)
        payload["targets"] = TARGETS
        payload["quick_targets"] = QUICK_TARGETS
        payload["targets_met"] = bool(ok)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    print(f"targets {'met' if ok else 'NOT met'} "
          f"({'quick' if args.quick else 'full'} floors)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
