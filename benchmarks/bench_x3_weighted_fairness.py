"""X3 (extension) — weighted Fair Share allocation and floors."""

from conftest import run_once
from repro.experiments import run_x3_weighted_fairness


def test_x3_weighted_fairness(benchmark):
    result = run_once(benchmark, run_x3_weighted_fairness)
    result.require()
