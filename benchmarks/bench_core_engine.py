"""Microbenchmark for the batched trajectory engine.

Standalone (not collected by pytest): times the batched ensemble
against member-by-member serial runs, and the vectorised quadratic-map
sweep against the generic per-point path, verifies the outputs agree,
and writes the numbers to ``BENCH_core.json``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_core_engine.py

The acceptance targets are a >= 5x speedup for a 256-member ensemble
(N = 8 connections, 2000 steps) and >= 3x for a 400-point
``quadratic_map_sweep``.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.analysis.bifurcation import (bifurcation_diagram,
                                        quadratic_map_sweep)
from repro.analysis.maps import QuadraticRateMap
from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway


def bench_ensemble(members=256, n=8, steps=2000, seed=11):
    system = FlowControlSystem(single_gateway(n, mu=1.0), FairShare(),
                               LinearSaturating(),
                               TargetRule(eta=0.6, beta=0.5),
                               style=FeedbackStyle.INDIVIDUAL)
    starts = np.random.default_rng(seed).uniform(0.0, 0.6,
                                                 size=(members, n))

    t0 = time.perf_counter()
    serial = [system.run(starts[m], max_steps=steps, tol=1e-13)
              for m in range(members)]
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = system.run_ensemble(starts, max_steps=steps, tol=1e-13)
    t_batched = time.perf_counter() - t0

    for m, traj in enumerate(serial):
        if batched.outcomes[m] is not traj.outcome or \
                not np.allclose(batched.finals[m], traj.final, atol=1e-12):
            raise AssertionError(f"ensemble member {m} disagrees with run()")
    return {"members": members, "connections": n, "max_steps": steps,
            "serial_s": round(t_serial, 4),
            "batched_s": round(t_batched, 4),
            "speedup": round(t_serial / t_batched, 2)}


def bench_quadratic_sweep(points=400, transient=2000, keep=256, seed=17):
    gains = np.linspace(0.5, 2.62, points)

    t0 = time.perf_counter()
    generic = bifurcation_diagram(
        lambda a: QuadraticRateMap(a=a, beta=0.25),
        gains, x0=0.1, transient=transient, keep=keep,
        derivative_family=lambda a: QuadraticRateMap(a=a,
                                                     beta=0.25).derivative)
    t_generic = time.perf_counter() - t0

    t0 = time.perf_counter()
    vectorised = quadratic_map_sweep(gains, beta=0.25, x0=0.1,
                                     transient=transient, keep=keep)
    t_vectorised = time.perf_counter() - t0

    for pt, gpt in zip(vectorised, generic):
        if not np.array_equal(pt.attractor, gpt.attractor):
            raise AssertionError(
                f"sweep attractor at a={pt.parameter} disagrees")
    return {"points": points, "transient": transient, "keep": keep,
            "generic_s": round(t_generic, 4),
            "vectorised_s": round(t_vectorised, 4),
            "speedup": round(t_generic / t_vectorised, 2)}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output JSON path (default: BENCH_core.json)")
    args = parser.parse_args(argv)

    ensemble = bench_ensemble()
    print(f"ensemble   : serial {ensemble['serial_s']}s, batched "
          f"{ensemble['batched_s']}s -> {ensemble['speedup']}x")
    sweep_res = bench_quadratic_sweep()
    print(f"quad sweep : generic {sweep_res['generic_s']}s, vectorised "
          f"{sweep_res['vectorised_s']}s -> {sweep_res['speedup']}x")

    results = {"ensemble": ensemble, "quadratic_sweep": sweep_res,
               "targets": {"ensemble_speedup_min": 5.0,
                           "quadratic_sweep_speedup_min": 3.0}}
    ok = (ensemble["speedup"] >= 5.0 and sweep_res["speedup"] >= 3.0)
    results["targets_met"] = ok
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} (targets met: {ok})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
