"""F7 — Theorem 4: Fair Share turns unilateral into systemic stability."""

from conftest import run_once
from repro.experiments import run_f7_fs_stability


def test_f7_fair_share_stability(benchmark):
    result = run_once(benchmark, run_f7_fs_stability, n_values=(4, 10))
    result.require()
