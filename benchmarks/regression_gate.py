"""Performance regression gate for the batched trajectory engine, the
fast simulation kernel, the blocked-ensemble scale path, the
controller zoo's batched paths, the structural chaos layer, and the
heterogeneous-clock asynchronous engine.

Re-runs the core microbenchmarks (``bench_core_engine.py``), the
simulation-kernel benchmarks (``bench_sim_kernel.py``), the
blocked-vs-one-shot scale benchmarks (``bench_scale.py``), the
controller benchmarks (``bench_controllers.py``), the chaos-layer
benchmarks (``bench_chaos.py``), the asynchronous-engine benchmarks
(``bench_async.py``), and the compiled-backend benchmarks
(``bench_compiled.py``), compares the fresh ratios against the
committed baselines in ``BENCH_core.json``, ``BENCH_sim.json``,
``BENCH_scale.json``, ``BENCH_controllers.json``,
``BENCH_chaos.json``, ``BENCH_async.json``, and
``BENCH_compiled.json``, and exits nonzero
when performance regressed by more than the threshold (default 25%).
The compiled-backend leg is skipped with a notice when no compiled
tier exists in the environment (no numba, no C compiler) — the tier
is optional, so a bare install must stay green.

Two modes:

* **full** (default) — identical workloads to the committed baselines.
  Each fresh speedup must stay above ``max(target_min,
  baseline_speedup * (1 - threshold))`` — i.e. within 25% of the
  recorded machine's number, but never judged more strictly than the
  repo's stated minimum targets.
* ``--quick`` — much smaller workloads for CI.  Speedups shrink with
  the workload, so quick mode only enforces the minimum targets (for
  the kernel benchmarks, the lower ``quick_targets`` recorded in
  ``BENCH_sim.json``), not the baseline-relative floor.

Run from the repository root::

    PYTHONPATH=src python benchmarks/regression_gate.py [--quick]

The comparison logic is pure (:func:`compare`) so the unit tests can
exercise the gate without timing anything.
"""

import argparse
import json
import sys
from pathlib import Path

from bench_async import QUICK_TARGETS as ASYNC_QUICK_TARGETS
from bench_async import run_benchmarks as run_async_benchmarks
from bench_chaos import QUICK_TARGETS as CHAOS_QUICK_TARGETS
from bench_chaos import run_benchmarks as run_chaos_benchmarks
from bench_compiled import QUICK_TARGETS as COMPILED_QUICK_TARGETS
from bench_compiled import compiled_tier_available
from bench_compiled import run_benchmarks as run_compiled_benchmarks
from bench_controllers import QUICK_TARGETS as CTRL_QUICK_TARGETS
from bench_controllers import run_benchmarks as run_controller_benchmarks
from bench_core_engine import bench_ensemble, bench_quadratic_sweep
from bench_scale import QUICK_TARGETS as SCALE_QUICK_TARGETS
from bench_scale import run_benchmarks as run_scale_benchmarks
from bench_sim_kernel import QUICK_TARGETS as SIM_QUICK_TARGETS
from bench_sim_kernel import run_benchmarks as run_sim_benchmarks

#: The core-engine benchmarks the gate tracks: (baseline key, targets key).
GATED = [("ensemble", "ensemble_speedup_min"),
         ("quadratic_sweep", "quadratic_sweep_speedup_min")]

#: The simulation-kernel benchmarks (baseline BENCH_sim.json).
GATED_SIM = [("fifo_closed_loop", "fifo_events_speedup_min"),
             ("f12_end_to_end", "f12_speedup_min"),
             ("warm_start", "warm_start_savings_min")]

#: The blocked-ensemble scale benchmarks (baseline BENCH_scale.json).
#: "speedup" holds a ratio in both: one-shot/blocked peak memory and
#: one-shot/blocked wall time, so compare() applies unchanged.
GATED_SCALE = [("memory", "scale_memory_ratio_min"),
               ("throughput", "scale_throughput_ratio_min")]

#: The controller-zoo benchmarks (baseline BENCH_controllers.json).
GATED_CONTROLLERS = [
    ("controlled_ensemble", "controllers_ensemble_speedup_min"),
    ("tcp_delta_batch", "controllers_delta_batch_speedup_min")]

#: The chaos-layer benchmarks (baseline BENCH_chaos.json).  "speedup"
#: holds clean/chaos overhead ratios, so compare() applies unchanged:
#: the floor bounds how much of clean throughput the chaos path keeps.
GATED_CHAOS = [("empty_plan", "chaos_empty_plan_ratio_min"),
               ("active_ensemble", "chaos_active_ensemble_ratio_min")]

#: The asynchronous-engine benchmarks (baseline BENCH_async.json).
#: "speedup" holds batched-vs-scalar for the ensemble and the
#: tau=0/tau=8 throughput ratio for the delay ring, so compare()
#: applies unchanged.
GATED_ASYNC = [("async_ensemble", "async_ensemble_speedup_min"),
               ("delay_ring", "async_delay_ring_ratio_min")]

#: The compiled-backend benchmarks (baseline BENCH_compiled.json).
#: Skipped with a notice when no compiled tier can be built in this
#: environment (no numba, no C compiler): the tier is optional by
#: contract, so its absence must not fail CI on a bare install.
GATED_COMPILED = [("compiled_fifo", "compiled_fifo_speedup_min"),
                  ("fs_queue_law", "fs_queue_law_speedup_min")]


def compare(baseline, fresh, threshold=0.25, floor_only=False,
            gated=GATED):
    """Judge fresh benchmark speedups against a committed baseline.

    Args:
        baseline: the parsed committed ``BENCH_core.json``.
        fresh: mapping with the same benchmark keys, each holding a
            ``"speedup"`` entry (other keys are ignored).
        threshold: allowed fractional regression relative to the
            baseline speedup (0.25 = fresh may be up to 25% slower).
        floor_only: enforce only the minimum targets, ignoring the
            baseline-relative floor (quick mode — small workloads have
            smaller speedups for reasons unrelated to regressions).
        gated: the (baseline key, targets key) pairs to judge —
            :data:`GATED` for the core engine, :data:`GATED_SIM` for
            the simulation kernel.

    Returns:
        ``(ok, report)`` — ``ok`` is True when nothing regressed;
        ``report`` is a list of per-benchmark result dicts with keys
        ``name``, ``baseline``, ``fresh``, ``floor``, ``ok``.
    """
    if not (0.0 <= threshold < 1.0):
        raise ValueError(f"threshold must be in [0, 1), got {threshold!r}")
    report = []
    for name, target_key in gated:
        base_speedup = float(baseline[name]["speedup"])
        target_min = float(baseline["targets"][target_key])
        if floor_only:
            floor = target_min
        else:
            floor = max(target_min, base_speedup * (1.0 - threshold))
        fresh_speedup = float(fresh[name]["speedup"])
        report.append({"name": name,
                       "baseline": base_speedup,
                       "fresh": fresh_speedup,
                       "floor": round(floor, 2),
                       "ok": fresh_speedup >= floor})
    return all(entry["ok"] for entry in report), report


def format_report(report) -> str:
    lines = []
    for entry in report:
        status = "OK " if entry["ok"] else "FAIL"
        lines.append(
            f"[{status}] {entry['name']:>15}: fresh {entry['fresh']}x "
            f"(baseline {entry['baseline']}x, floor {entry['floor']}x)")
    return "\n".join(lines)


def run_fresh(quick=False):
    """Time the gated core-engine benchmarks at full or quick scale."""
    if quick:
        ensemble = bench_ensemble(members=64, n=8, steps=500)
        sweep_res = bench_quadratic_sweep(points=100, transient=1000,
                                          keep=256)
    else:
        ensemble = bench_ensemble()
        sweep_res = bench_quadratic_sweep()
    return {"ensemble": ensemble, "quadratic_sweep": sweep_res}


def _quick_baseline_for_mode(baseline, quick, quick_targets):
    """In quick mode, judge against the lower quick floors recorded in
    the baseline (fallback: the benchmark module's constants)."""
    if not quick:
        return baseline
    swapped = dict(baseline)
    swapped["targets"] = baseline.get("quick_targets", quick_targets)
    return swapped


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_core.json"),
        help="committed baseline JSON (default: repo BENCH_core.json)")
    parser.add_argument(
        "--sim-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_sim.json"),
        help="committed kernel baseline JSON (default: repo "
             "BENCH_sim.json)")
    parser.add_argument(
        "--scale-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_scale.json"),
        help="committed scale baseline JSON (default: repo "
             "BENCH_scale.json)")
    parser.add_argument(
        "--controllers-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_controllers.json"),
        help="committed controller baseline JSON (default: repo "
             "BENCH_controllers.json)")
    parser.add_argument(
        "--chaos-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_chaos.json"),
        help="committed chaos-layer baseline JSON (default: repo "
             "BENCH_chaos.json)")
    parser.add_argument(
        "--async-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_async.json"),
        help="committed asynchronous-engine baseline JSON (default: "
             "repo BENCH_async.json)")
    parser.add_argument(
        "--compiled-baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_compiled.json"),
        help="committed compiled-backend baseline JSON (default: repo "
             "BENCH_compiled.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression vs the "
                             "baseline speedup (default 0.25)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload; enforce only the "
                             "minimum speedup targets")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.sim_baseline) as fh:
        sim_baseline = json.load(fh)
    with open(args.scale_baseline) as fh:
        scale_baseline = json.load(fh)
    with open(args.controllers_baseline) as fh:
        ctrl_baseline = json.load(fh)
    with open(args.chaos_baseline) as fh:
        chaos_baseline = json.load(fh)
    with open(args.async_baseline) as fh:
        async_baseline = json.load(fh)
    fresh = run_fresh(quick=args.quick)
    ok, report = compare(baseline, fresh, threshold=args.threshold,
                         floor_only=args.quick)
    sim_fresh = run_sim_benchmarks(quick=args.quick)
    sim_ok, sim_report = compare(
        _quick_baseline_for_mode(sim_baseline, args.quick,
                                 SIM_QUICK_TARGETS), sim_fresh,
        threshold=args.threshold, floor_only=args.quick,
        gated=GATED_SIM)
    scale_fresh = run_scale_benchmarks(quick=args.quick)
    scale_ok, scale_report = compare(
        _quick_baseline_for_mode(scale_baseline, args.quick,
                                 SCALE_QUICK_TARGETS), scale_fresh,
        threshold=args.threshold, floor_only=args.quick,
        gated=GATED_SCALE)
    ctrl_fresh = run_controller_benchmarks(quick=args.quick)
    ctrl_ok, ctrl_report = compare(
        _quick_baseline_for_mode(ctrl_baseline, args.quick,
                                 CTRL_QUICK_TARGETS), ctrl_fresh,
        threshold=args.threshold, floor_only=args.quick,
        gated=GATED_CONTROLLERS)
    chaos_fresh = run_chaos_benchmarks(quick=args.quick)
    chaos_ok, chaos_report = compare(
        _quick_baseline_for_mode(chaos_baseline, args.quick,
                                 CHAOS_QUICK_TARGETS), chaos_fresh,
        threshold=args.threshold, floor_only=args.quick,
        gated=GATED_CHAOS)
    async_fresh = run_async_benchmarks(quick=args.quick)
    async_ok, async_report = compare(
        _quick_baseline_for_mode(async_baseline, args.quick,
                                 ASYNC_QUICK_TARGETS), async_fresh,
        threshold=args.threshold, floor_only=args.quick,
        gated=GATED_ASYNC)
    compiled_ok, compiled_report, compiled_notice = True, [], None
    if not compiled_tier_available():
        compiled_notice = ("compiled-backend benchmarks skipped: no "
                           "compiled tier in this environment (no "
                           "numba, no C compiler) — pure-python "
                           "fallback in force")
    else:
        with open(args.compiled_baseline) as fh:
            compiled_baseline = json.load(fh)
        compiled_fresh = run_compiled_benchmarks(quick=args.quick)
        compiled_ok, compiled_report = compare(
            _quick_baseline_for_mode(compiled_baseline, args.quick,
                                     COMPILED_QUICK_TARGETS),
            compiled_fresh, threshold=args.threshold,
            floor_only=args.quick, gated=GATED_COMPILED)
    ok = ok and sim_ok and scale_ok and ctrl_ok and chaos_ok \
        and async_ok and compiled_ok
    print(format_report(report + sim_report + scale_report
                        + ctrl_report + chaos_report + async_report
                        + compiled_report))
    if compiled_notice:
        print(f"[SKIP] {compiled_notice}")
    print(f"\nregression gate {'PASSED' if ok else 'FAILED'} "
          f"({'quick' if args.quick else 'full'} mode, "
          f"threshold {args.threshold:.0%})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
