"""Performance regression gate for the batched trajectory engine.

Re-runs the two core microbenchmarks (see ``bench_core_engine.py``),
compares the fresh speedups against the committed baseline in
``BENCH_core.json``, and exits nonzero when performance regressed by
more than the threshold (default 25%).

Two modes:

* **full** (default) — identical workload to the committed baseline
  (256-member ensemble, 400-point sweep).  Each fresh speedup must stay
  above ``max(target_min, baseline_speedup * (1 - threshold))`` — i.e.
  within 25% of the recorded machine's number, but never judged more
  strictly than the repo's stated minimum targets.
* ``--quick`` — a much smaller workload for CI (64-member ensemble,
  100-point sweep).  Speedups shrink with the workload, so quick mode
  only enforces the minimum targets (5x ensemble, 3x sweep), not the
  baseline-relative floor.

Run from the repository root::

    PYTHONPATH=src python benchmarks/regression_gate.py [--quick]

The comparison logic is pure (:func:`compare`) so the unit tests can
exercise the gate without timing anything.
"""

import argparse
import json
import sys
from pathlib import Path

from bench_core_engine import bench_ensemble, bench_quadratic_sweep

#: The benchmarks the gate tracks: (baseline key, targets key).
GATED = [("ensemble", "ensemble_speedup_min"),
         ("quadratic_sweep", "quadratic_sweep_speedup_min")]


def compare(baseline, fresh, threshold=0.25, floor_only=False):
    """Judge fresh benchmark speedups against a committed baseline.

    Args:
        baseline: the parsed committed ``BENCH_core.json``.
        fresh: mapping with the same benchmark keys, each holding a
            ``"speedup"`` entry (other keys are ignored).
        threshold: allowed fractional regression relative to the
            baseline speedup (0.25 = fresh may be up to 25% slower).
        floor_only: enforce only the minimum targets, ignoring the
            baseline-relative floor (quick mode — small workloads have
            smaller speedups for reasons unrelated to regressions).

    Returns:
        ``(ok, report)`` — ``ok`` is True when nothing regressed;
        ``report`` is a list of per-benchmark result dicts with keys
        ``name``, ``baseline``, ``fresh``, ``floor``, ``ok``.
    """
    if not (0.0 <= threshold < 1.0):
        raise ValueError(f"threshold must be in [0, 1), got {threshold!r}")
    report = []
    for name, target_key in GATED:
        base_speedup = float(baseline[name]["speedup"])
        target_min = float(baseline["targets"][target_key])
        if floor_only:
            floor = target_min
        else:
            floor = max(target_min, base_speedup * (1.0 - threshold))
        fresh_speedup = float(fresh[name]["speedup"])
        report.append({"name": name,
                       "baseline": base_speedup,
                       "fresh": fresh_speedup,
                       "floor": round(floor, 2),
                       "ok": fresh_speedup >= floor})
    return all(entry["ok"] for entry in report), report


def format_report(report) -> str:
    lines = []
    for entry in report:
        status = "OK " if entry["ok"] else "FAIL"
        lines.append(
            f"[{status}] {entry['name']:>15}: fresh {entry['fresh']}x "
            f"(baseline {entry['baseline']}x, floor {entry['floor']}x)")
    return "\n".join(lines)


def run_fresh(quick=False):
    """Time the gated benchmarks at full or quick scale."""
    if quick:
        ensemble = bench_ensemble(members=64, n=8, steps=500)
        sweep_res = bench_quadratic_sweep(points=100, transient=1000,
                                          keep=256)
    else:
        ensemble = bench_ensemble()
        sweep_res = bench_quadratic_sweep()
    return {"ensemble": ensemble, "quadratic_sweep": sweep_res}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_core.json"),
        help="committed baseline JSON (default: repo BENCH_core.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression vs the "
                             "baseline speedup (default 0.25)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload; enforce only the "
                             "minimum speedup targets")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    fresh = run_fresh(quick=args.quick)
    ok, report = compare(baseline, fresh, threshold=args.threshold,
                         floor_only=args.quick)
    print(format_report(report))
    print(f"\nregression gate {'PASSED' if ok else 'FAILED'} "
          f"({'quick' if args.quick else 'full'} mode, "
          f"threshold {args.threshold:.0%})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
