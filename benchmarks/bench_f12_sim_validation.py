"""F12 — packet simulator vs analytic queue laws; closed loop."""

from conftest import run_once
from repro.experiments import run_f12_sim_validation


def test_f12_simulator_validation(benchmark):
    result = run_once(benchmark, run_f12_sim_validation,
                      horizon=12000.0, warmup=1200.0, loop_steps=60,
                      loop_interval=250.0, tolerance=0.25,
                      loop_tolerance=0.3)
    result.require()
