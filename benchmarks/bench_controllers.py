"""Controller-zoo benchmarks: the batched RCP path and the vectorised
TCP-like rule against their scalar references.

Standalone (not collected by pytest): measures the two performance
promises the modern-controller work makes,

* **controlled ensemble** — ``run_ensemble`` over ``M`` members of a
  controller-driven (RCP) system vs a Python loop of scalar ``run``
  calls.  Both sides use ``tol=0.0`` so every member consumes the full
  step budget (identical work), and the batched finals are verified
  bit-identical to the scalar finals before any number is reported;
* **tcp delta_batch** — :class:`~repro.core.ratecontrol.TcpLikeRule`'s
  vectorised ``delta_batch`` vs the base class's scalar-loop fallback
  over a large ``(M, N)`` batch, verified ``np.array_equal`` first.

As in the sibling benchmarks, single timings swing with machine noise,
so each gated number is the median of per-pair ratios over
interleaved runs.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_controllers.py [--quick]
        [--check] [--out PATH]

``--quick`` shrinks the workload for CI and judges against the lower
``quick_targets``; ``--check`` additionally compares against the
committed ``BENCH_controllers.json`` floors without rewriting it.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.dynamics import FlowControlSystem
from repro.core.fifo import Fifo
from repro.core.ratecontrol import RateAdjustment, RcpSourceRule, \
    TcpLikeRule
from repro.core.rcp import RcpController
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway

#: Interleaved timing pairs per benchmark (gated number = median ratio).
REPEATS = 5

#: Full-scale floors (the committed BENCH_controllers.json targets);
#: measured speedups are ~38x / ~26x, floored with noise headroom.
TARGETS = {"controllers_ensemble_speedup_min": 8.0,
           "controllers_delta_batch_speedup_min": 10.0}

#: Quick-mode floors: smaller workloads leave more room for timer
#: noise, so CI judges against laxer minima.
QUICK_TARGETS = {"controllers_ensemble_speedup_min": 4.0,
                 "controllers_delta_batch_speedup_min": 8.0}


def _controlled_system(n):
    net = single_gateway(n, mu=float(n))
    return FlowControlSystem(net, Fifo(), LinearSaturating(),
                             RcpSourceRule(),
                             style=FeedbackStyle.INDIVIDUAL,
                             controller=RcpController(alpha=0.5,
                                                      beta=0.05))


def _initials(m, n, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.05, 0.5, size=(m, n))


def bench_controlled_ensemble(n=256, members=64, max_steps=60,
                              pairs=REPEATS):
    """Batched controlled ensemble vs a scalar loop over members."""
    system = _controlled_system(n)
    r0 = _initials(members, n)
    kwargs = dict(max_steps=max_steps, tol=0.0, max_period=8,
                  history="none")
    system.run_ensemble(r0[:2], **kwargs)  # warm-up

    ens = system.run_ensemble(r0, **kwargs)
    for m in range(members):
        traj = system.run(r0[m], max_steps=max_steps, tol=0.0,
                          max_period=8)
        if not np.array_equal(ens.finals[m], traj.final):
            raise AssertionError(
                f"batched controlled member {m} differs from scalar run")

    ratios = []
    t_scalar = t_batched = 0.0
    for _ in range(pairs):
        t0 = time.perf_counter()
        for m in range(members):
            system.run(r0[m], max_steps=max_steps, tol=0.0, max_period=8)
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        system.run_ensemble(r0, **kwargs)
        t_batched = time.perf_counter() - t0
        ratios.append(t_scalar / t_batched)
    ratios.sort()
    member_steps = members * max_steps
    return {"n": n, "members": members, "max_steps": max_steps,
            "pairs": pairs,
            "batched_msteps_per_s": round(member_steps / t_batched),
            "scalar_msteps_per_s": round(member_steps / t_scalar),
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup": round(ratios[len(ratios) // 2], 2)}


def bench_tcp_delta_batch(members=64, n=4096, pairs=REPEATS):
    """Vectorised TcpLikeRule.delta_batch vs the scalar-loop fallback."""
    rule = TcpLikeRule(increase=0.05, decrease=0.125, threshold=0.5)
    rng = np.random.default_rng(11)
    rates = rng.uniform(0.01, 2.0, size=(members, n))
    signals = rng.uniform(0.0, 1.0, size=(members, n))
    delays = rng.uniform(0.5, 5.0, size=(members, n))

    def fallback():
        return RateAdjustment.delta_batch(rule, rates, signals, delays)

    def vectorised():
        return rule.delta_batch(rates, signals, delays)

    if not np.array_equal(fallback(), vectorised()):
        raise AssertionError(
            "vectorised tcp delta_batch differs from the scalar loop")

    ratios = []
    for _ in range(pairs):
        t0 = time.perf_counter()
        fallback()
        t_loop = time.perf_counter() - t0
        t0 = time.perf_counter()
        vectorised()
        t_vec = time.perf_counter() - t0
        ratios.append(t_loop / t_vec)
    ratios.sort()
    return {"members": members, "n": n, "pairs": pairs,
            "elements": members * n,
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup": round(ratios[len(ratios) // 2], 2)}


def run_benchmarks(quick=False):
    if quick:
        ensemble = bench_controlled_ensemble(n=64, members=32,
                                             max_steps=30, pairs=3)
        delta = bench_tcp_delta_batch(members=16, n=1024, pairs=3)
    else:
        ensemble = bench_controlled_ensemble()
        delta = bench_tcp_delta_batch()
    return {"controlled_ensemble": ensemble, "tcp_delta_batch": delta}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_controllers.json",
                        help="output JSON path (default: "
                             "BENCH_controllers.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload, judged against the "
                             "quick floors (no JSON rewrite)")
    parser.add_argument("--check", action="store_true",
                        help="judge fresh numbers against the committed "
                             "baseline's floors without rewriting it")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    ens, delta = results["controlled_ensemble"], results["tcp_delta_batch"]
    print(f"controlled ensemble: batched {ens['batched_msteps_per_s']} vs "
          f"scalar {ens['scalar_msteps_per_s']} member-steps/s at "
          f"N={ens['n']}, M={ens['members']} -> {ens['speedup']}x")
    print(f"tcp delta_batch    : {delta['elements']} elements -> "
          f"{delta['speedup']}x over the scalar-loop fallback")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (ens["speedup"] >= targets["controllers_ensemble_speedup_min"]
          and delta["speedup"]
          >= targets["controllers_delta_batch_speedup_min"])
    if args.check:
        with open(args.out) as fh:
            committed = json.load(fh)
        floors = (committed["quick_targets"] if args.quick
                  else committed["targets"])
        ok = (ens["speedup"]
              >= floors["controllers_ensemble_speedup_min"]
              and delta["speedup"]
              >= floors["controllers_delta_batch_speedup_min"])
        print(f"check vs committed floors: {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1

    if not args.quick:
        payload = dict(results)
        payload["targets"] = TARGETS
        payload["quick_targets"] = QUICK_TARGETS
        payload["targets_met"] = bool(ok)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    print(f"targets {'met' if ok else 'NOT met'} "
          f"({'quick' if args.quick else 'full'} floors)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
