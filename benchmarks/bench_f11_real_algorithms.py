"""F11 — Section 4: DECbit / AIMD / Tahoe through the model's lens."""

from conftest import run_once
from repro.experiments import run_f11_real_algorithms


def test_f11_real_algorithms(benchmark):
    result = run_once(benchmark, run_f11_real_algorithms,
                      steps=300, pipes=(20.0, 60.0))
    result.require()
