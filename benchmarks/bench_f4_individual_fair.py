"""F4 — Theorem 3: individual feedback guaranteed fair."""

from conftest import run_once
from repro.experiments import run_f4_individual_fair


def test_f4_individual_fairness(benchmark):
    result = run_once(benchmark, run_f4_individual_fair,
                      n_networks=2, starts_per_network=2)
    result.require()
