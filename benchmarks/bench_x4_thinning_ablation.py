"""X4 (extension) — Fair Share with measured instead of oracle rates."""

from conftest import run_once
from repro.experiments import run_x4_thinning_ablation


def test_x4_thinning_ablation(benchmark):
    result = run_once(benchmark, run_x4_thinning_ablation,
                      horizon=10000.0, warmup=1000.0)
    result.require()
