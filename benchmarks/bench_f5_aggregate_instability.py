"""F5 — Section 3.3: the 1 - eta*N instability of aggregate feedback."""

from conftest import run_once
from repro.experiments import run_f5_aggregate_instability


def test_f5_aggregate_instability(benchmark):
    result = run_once(benchmark, run_f5_aggregate_instability,
                      n_values=(2, 4, 6, 8, 12))
    result.require()
    # Crossover: stable rows below N=2/eta=6.7, unstable above.
    stable = {row[0] for row in result.rows if row[6]}
    assert stable == {2, 4, 6}
