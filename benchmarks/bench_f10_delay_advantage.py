"""F10 — Section 3.4: delay advantage >= N over reservations."""

from conftest import run_once
from repro.experiments import run_f10_delay_advantage


def test_f10_delay_advantage(benchmark):
    result = run_once(benchmark, run_f10_delay_advantage,
                      n_values=(2, 4, 8, 16), sim_horizon=3000.0)
    result.require()
    analytic = [row for row in result.rows if row[1] == "analytic"]
    for row in analytic:
        assert row[5] >= row[0]  # ratio >= N
