"""F9 — Theorem 5: robustness floors under heterogeneous greed."""

from conftest import run_once
from repro.experiments import run_f9_robustness


def test_f9_robustness_floors(benchmark):
    result = run_once(benchmark, run_f9_robustness,
                      steps=50000, condition_trials=100)
    result.require()
