"""Throughput benchmark for the scenario-fuzzing harness.

Standalone (not collected by pytest, not part of the regression gate):
measures how fast the generator emits specs and how fast the full
oracle catalogue chews through generated scenarios, and reports the
per-oracle applicability mix — the number to watch when adding oracles
or widening the generator's families.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_fuzz_scenarios.py [--count K]
"""

import argparse
import json
import time
from collections import Counter

from repro.scenarios import generate, run_scenario


def bench_generation(seed=7, count=200):
    t0 = time.perf_counter()
    specs = generate(seed, count)
    elapsed = time.perf_counter() - t0
    return specs, {
        "count": count,
        "seconds": round(elapsed, 4),
        "specs_per_s": round(count / elapsed, 1),
    }


def bench_oracles(specs):
    applicable = Counter()
    violations = 0
    t0 = time.perf_counter()
    for spec in specs:
        outcome = run_scenario(spec)
        for res in outcome.results:
            if res.applicable:
                applicable[res.name] += 1
        violations += len(outcome.violations)
    elapsed = time.perf_counter() - t0
    return {
        "scenarios": len(specs),
        "seconds": round(elapsed, 2),
        "scenarios_per_s": round(len(specs) / elapsed, 2),
        "applicable_checks": dict(sorted(applicable.items())),
        "violations": violations,
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--count", type=int, default=25,
                        help="scenarios for the oracle-throughput leg")
    args = parser.parse_args()

    specs, gen_stats = bench_generation(args.seed, max(200, args.count))
    oracle_stats = bench_oracles(specs[:args.count])
    report = {"generation": gen_stats, "oracles": oracle_stats}
    print(json.dumps(report, indent=2))
    if oracle_stats["violations"]:
        raise SystemExit(
            f"{oracle_stats['violations']} oracle violation(s) on the "
            f"benchmark sweep — run `python -m repro fuzz --seed "
            f"{args.seed} --count {args.count} --shrink` to reproduce")


if __name__ == "__main__":
    main()
