"""Million-scale benchmark: blocked ensembles vs one-shot execution.

Standalone (not collected by pytest): measures the two promises of the
blocked ensemble engine on a large single-gateway Fair Share system,

* **memory** — peak traced allocation of ``run_ensemble`` at
  ``N = 100_000`` connections, ``M = 64`` members, with blocked
  execution (``block_size=8``) vs the one-shot path
  (``block_size=None``).  The blocked run must fit the fixed budget
  (:data:`BUDGET_MB`); the one-shot run must not (that is the point of
  blocking), and the peak ratio is the gated number;
* **throughput** — member-steps per second at a moderate ``N`` where
  both paths are cheap, blocked vs one-shot (median ratio over
  :data:`REPEATS` interleaved timing pairs).  Blocking must cost
  almost nothing when memory is not a concern: the gated ratio is
  one-shot time / blocked time.

Both runs use ``tol=0.0`` so every member consumes the full step
budget — identical work on both sides, no convergence races — and the
results are verified bit-identical before any number is reported.

The analytic projections from
:func:`repro.core.dynamics.ensemble_buffer_bytes` are recorded
alongside the measurements (informational, not gated): they show why
the one-shot tail buffer alone dwarfs the budget at paper scale.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] [--check]

``--quick`` shrinks the workload for CI and judges against the lower
``quick_targets``; ``--check`` additionally compares against the
committed ``BENCH_scale.json`` floors without rewriting it (this is
what ``make scale-quick`` runs).
"""

import argparse
import json
import sys
import time
import tracemalloc

import numpy as np

from repro.core.dynamics import FlowControlSystem, ensemble_buffer_bytes
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway

#: Fixed memory budget (MB) the blocked run must fit inside.
BUDGET_MB = 512

#: Interleaved one-shot/blocked timing pairs in the throughput
#: comparison (the gated ratio is the median of the per-pair ratios).
REPEATS = 5

#: Full-scale floors (the committed BENCH_scale.json targets): the
#: one-shot peak must be >= 3x the blocked peak, and blocking may cost
#: at most 10% throughput at small N.
TARGETS = {"scale_memory_ratio_min": 3.0,
           "scale_throughput_ratio_min": 0.9}

#: Quick-mode floors: smaller workloads shrink the buffer gap and
#: amortise block overhead worse, for reasons unrelated to regressions.
QUICK_TARGETS = {"scale_memory_ratio_min": 2.0,
                 "scale_throughput_ratio_min": 0.85}


def _build(n, mu=None):
    """A single-gateway Fair Share / individual-signal system at size n."""
    net = single_gateway(n, mu=float(n) if mu is None else mu)
    return FlowControlSystem(net, FairShare(), LinearSaturating(),
                             TargetRule(eta=0.05, beta=0.4),
                             style=FeedbackStyle.INDIVIDUAL)


def _initials(m, n, seed=7):
    rng = np.random.default_rng(seed)
    # Per-member spread around a moderate operating point, scaled so the
    # gateway load starts below saturation.
    return rng.uniform(0.2, 0.8, size=(m, n))


def _run(system, initials, block_size, max_steps, history):
    return system.run_ensemble(initials, max_steps=max_steps, tol=0.0,
                               max_period=8, history=history,
                               block_size=block_size)


def _traced_peak(fn):
    """(result, peak traced bytes) of calling fn with tracemalloc on."""
    tracemalloc.start()
    try:
        out = fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return out, peak


def bench_memory(n=100_000, members=64, block_size=8, max_steps=12,
                 budget_mb=BUDGET_MB):
    """Peak traced allocation, blocked vs one-shot, at paper scale.

    Both runs keep the default rolling tail (``history="tail"``) — the
    mode period detection needs — so the one-shot side pays the full
    ``(M, tail, N)`` buffer while the blocked side only ever holds one
    ``(block, tail, N)`` slice.
    """
    system = _build(n)
    r0 = _initials(members, n)
    # Warm-up outside the traced region: first-touch page faults and
    # lazily built CSR arrays belong to neither side.
    _run(system, r0[:2], None, 2, "none")

    blocked, blocked_peak = _traced_peak(
        lambda: _run(system, r0, block_size, max_steps, "tail"))
    oneshot, oneshot_peak = _traced_peak(
        lambda: _run(system, r0, None, max_steps, "tail"))
    if not np.array_equal(blocked.finals, oneshot.finals):
        raise AssertionError("blocked finals differ from one-shot finals")
    if not np.array_equal(blocked.steps, oneshot.steps):
        raise AssertionError("blocked steps differ from one-shot steps")

    budget = budget_mb * 1024 * 1024
    projection = {
        policy: ensemble_buffer_bytes(members, n, max_steps=max_steps,
                                      max_period=8, history=policy)
        for policy in ("full", "tail", "none")}
    return {"n": n, "members": members, "block_size": block_size,
            "max_steps": max_steps, "budget_mb": budget_mb,
            "blocked_peak_mb": round(blocked_peak / 2**20, 1),
            "oneshot_peak_mb": round(oneshot_peak / 2**20, 1),
            "blocked_within_budget": bool(blocked_peak <= budget),
            "oneshot_within_budget": bool(oneshot_peak <= budget),
            "projected_buffer_mb": {k: round(v / 2**20, 1)
                                    for k, v in projection.items()},
            "speedup": round(oneshot_peak / blocked_peak, 2)}


def bench_throughput(n=4096, members=64, block_size=32, max_steps=30,
                     pairs=REPEATS):
    """Member-steps per second, blocked vs one-shot, at moderate N.

    ``history="none"`` on both sides: the comparison is about stepping
    cost, not buffer writes.  As in ``bench_sim_kernel``, single
    timings swing with machine noise, so the gated number is the
    median of per-pair ratios over interleaved one-shot/blocked runs —
    slow spells hit both sides alike.
    """
    system = _build(n)
    r0 = _initials(members, n)
    _run(system, r0, None, 2, "none")  # warm-up

    ratios = []
    t_blocked = t_oneshot = 0.0
    for _ in range(pairs):
        t0 = time.perf_counter()
        _run(system, r0, None, max_steps, "none")
        t_oneshot = time.perf_counter() - t0
        t0 = time.perf_counter()
        _run(system, r0, block_size, max_steps, "none")
        t_blocked = time.perf_counter() - t0
        ratios.append(t_oneshot / t_blocked)
    ratios.sort()
    member_steps = members * max_steps
    return {"n": n, "members": members, "block_size": block_size,
            "max_steps": max_steps, "pairs": pairs,
            "blocked_msteps_per_s": round(member_steps / t_blocked),
            "oneshot_msteps_per_s": round(member_steps / t_oneshot),
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup": round(ratios[len(ratios) // 2], 2)}


def run_benchmarks(quick=False):
    if quick:
        memory = bench_memory(n=4096, members=32, block_size=8,
                              max_steps=10, budget_mb=64)
        throughput = bench_throughput(n=2048, members=64, block_size=16,
                                      max_steps=20, pairs=3)
    else:
        memory = bench_memory()
        throughput = bench_throughput()
    return {"memory": memory, "throughput": throughput}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="output JSON path (default: BENCH_scale.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload, judged against the "
                             "quick floors (no JSON rewrite)")
    parser.add_argument("--check", action="store_true",
                        help="judge fresh numbers against the committed "
                             "baseline's floors without rewriting it")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    mem, thr = results["memory"], results["throughput"]
    print(f"memory    : one-shot {mem['oneshot_peak_mb']} MB vs blocked "
          f"{mem['blocked_peak_mb']} MB at N={mem['n']} -> "
          f"{mem['speedup']}x (budget {mem['budget_mb']} MB: blocked "
          f"{'fits' if mem['blocked_within_budget'] else 'BLOWS'}, "
          f"one-shot "
          f"{'fits' if mem['oneshot_within_budget'] else 'blows'})")
    print(f"throughput: blocked {thr['blocked_msteps_per_s']} vs one-shot "
          f"{thr['oneshot_msteps_per_s']} member-steps/s at "
          f"N={thr['n']} -> {thr['speedup']}x")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (mem["speedup"] >= targets["scale_memory_ratio_min"]
          and thr["speedup"] >= targets["scale_throughput_ratio_min"]
          and mem["blocked_within_budget"])
    if args.check:
        with open(args.out) as fh:
            committed = json.load(fh)
        floors = (committed["quick_targets"] if args.quick
                  else committed["targets"])
        ok = (mem["speedup"] >= floors["scale_memory_ratio_min"]
              and thr["speedup"] >= floors["scale_throughput_ratio_min"]
              and mem["blocked_within_budget"])
        print(f"checked against committed {args.out} floors: "
              f"{'OK' if ok else 'FAIL'}")
    results["targets"] = dict(TARGETS)
    results["quick_targets"] = dict(QUICK_TARGETS)
    results["targets_met"] = ok
    if not (args.quick or args.check):
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out} (targets met: {ok})")
    else:
        print(f"{'quick ' if args.quick else ''}floors met: {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
