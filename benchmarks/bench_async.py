"""Heterogeneous-clock asynchronous engine benchmarks.

Standalone (not collected by pytest): times the batched
``run_async_ensemble`` against the member-by-member scalar
:class:`~repro.core.asynchronous.AsynchronousRunner` loop it must
reproduce bit-identically.  Two gated numbers:

* **clock ensemble** — a 256-member ensemble under a slow/fast
  :class:`~repro.core.asynchronous.RateMixClock` schedule with a
  2-step signal delay, batched vs the scalar Python loop.  A sample of
  members is verified bit-identical (finals, outcomes, steps) before
  any number is reported — the same contract the
  ``async-batch-equivalence`` oracle asserts per-scenario;
* **delay ring overhead** — the same batched ensemble at ``tau = 8``
  vs ``tau = 0``.  The delayed-signal ring buffer is a slot write plus
  a slot read per step, so a deep delay line must keep most of the
  undelayed throughput (a *ratio*, not a speedup: 1.0 means free).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_async.py [--quick]
        [--check] [--out PATH]

``--quick`` shrinks the workload for CI and judges against the lower
``quick_targets``; ``--check`` additionally compares against the
committed ``BENCH_async.json`` floors without rewriting it.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.asynchronous import (AsynchronousRunner, ClockSchedule,
                                     RateMixClock, run_async_ensemble)
from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway

#: Full-scale floors (the committed BENCH_async.json targets): the
#: batched engine replaces a per-member Python loop with per-step
#: vectorised updates over the whole (M, N) block.
TARGETS = {"async_ensemble_speedup_min": 10.0,
           "async_delay_ring_ratio_min": 0.5}

#: Quick-mode floors: tiny workloads amortise the per-step schedule
#: mask and ring bookkeeping over much less numpy work.
QUICK_TARGETS = {"async_ensemble_speedup_min": 3.0,
                 "async_delay_ring_ratio_min": 0.3}


def _system(n):
    return FlowControlSystem(single_gateway(n, mu=1.0), FairShare(),
                             LinearSaturating(),
                             TargetRule(eta=0.1, beta=0.5),
                             style=FeedbackStyle.INDIVIDUAL)


def _schedule(seed=3):
    return ClockSchedule(RateMixClock(0.25, 1.0, 0.5, seed=seed))


def bench_async_ensemble(members=256, n=16, steps=400, tau=2,
                         verify_members=4, seed=7):
    """Batched clocked ensemble vs the scalar per-member Python loop.

    ``tol=0`` keeps every member running the full step budget so both
    sides do identical amounts of dynamics work.
    """
    system = _system(n)
    sched = _schedule()
    starts = np.random.default_rng(seed).uniform(0.01, 0.9 / n,
                                                 size=(members, n))
    kwargs = dict(schedule=sched, signal_delay=tau, max_steps=steps,
                  tol=0.0)
    run_async_ensemble(system, starts[:2], **kwargs)  # warm-up

    ens = run_async_ensemble(system, starts, **kwargs)
    runner = AsynchronousRunner(system, sched, signal_delay=tau)
    for m in range(0, members, max(1, members // verify_members)):
        traj = runner.run(starts[m], max_steps=steps, tol=0.0)
        if ens.outcomes[m] is not traj.outcome \
                or int(ens.steps[m]) != traj.steps \
                or not np.array_equal(ens.finals[m], traj.final):
            raise AssertionError(
                f"async ensemble member {m} differs from its scalar "
                f"replay")

    t0 = time.perf_counter()
    for m in range(members):
        runner.run(starts[m], max_steps=steps, tol=0.0)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_async_ensemble(system, starts, **kwargs)
    t_batched = time.perf_counter() - t0

    member_steps = members * steps
    return {"members": members, "connections": n, "max_steps": steps,
            "signal_delay": tau,
            "serial_s": round(t_serial, 4),
            "batched_s": round(t_batched, 4),
            "serial_msteps_per_s": round(member_steps / t_serial),
            "batched_msteps_per_s": round(member_steps / t_batched),
            "speedup": round(t_serial / t_batched, 2)}


def bench_delay_ring(members=256, n=16, steps=400, tau=8,
                     verify_members=2, seed=7):
    """Batched ensemble with a deep delay line vs no delay at all."""
    system = _system(n)
    sched = _schedule()
    starts = np.random.default_rng(seed).uniform(0.01, 0.9 / n,
                                                 size=(members, n))

    def batched(delay):
        return run_async_ensemble(system, starts, schedule=sched,
                                  signal_delay=delay, max_steps=steps,
                                  tol=0.0)

    batched(tau)  # warm-up
    ens = batched(tau)
    runner = AsynchronousRunner(system, sched, signal_delay=tau)
    for m in range(0, members, max(1, members // verify_members)):
        traj = runner.run(starts[m], max_steps=steps, tol=0.0)
        if not np.array_equal(ens.finals[m], traj.final):
            raise AssertionError(
                f"delayed ensemble member {m} differs from its scalar "
                f"replay")

    t0 = time.perf_counter()
    batched(0)
    t_undelayed = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched(tau)
    t_delayed = time.perf_counter() - t0

    return {"members": members, "connections": n, "max_steps": steps,
            "signal_delay": tau,
            "undelayed_s": round(t_undelayed, 4),
            "delayed_s": round(t_delayed, 4),
            "speedup": round(t_undelayed / t_delayed, 2)}


def run_benchmarks(quick=False):
    if quick:
        ensemble = bench_async_ensemble(members=32, n=8, steps=150)
        ring = bench_delay_ring(members=32, n=8, steps=150, tau=4)
    else:
        ensemble = bench_async_ensemble()
        ring = bench_delay_ring()
    return {"async_ensemble": ensemble, "delay_ring": ring}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_async.json",
                        help="output JSON path (default: "
                             "BENCH_async.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI workload, judged against the "
                             "quick floors (no JSON rewrite)")
    parser.add_argument("--check", action="store_true",
                        help="judge fresh numbers against the committed "
                             "baseline's floors without rewriting it")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    ensemble, ring = results["async_ensemble"], results["delay_ring"]
    print(f"async ensemble: serial {ensemble['serial_s']}s, batched "
          f"{ensemble['batched_s']}s over M={ensemble['members']} -> "
          f"{ensemble['speedup']}x")
    print(f"delay ring    : tau=0 {ring['undelayed_s']}s vs "
          f"tau={ring['signal_delay']} {ring['delayed_s']}s -> "
          f"{ring['speedup']}x of undelayed throughput")

    targets = QUICK_TARGETS if args.quick else TARGETS
    ok = (ensemble["speedup"] >= targets["async_ensemble_speedup_min"]
          and ring["speedup"] >= targets["async_delay_ring_ratio_min"])
    if args.check:
        with open(args.out) as fh:
            committed = json.load(fh)
        floors = (committed["quick_targets"] if args.quick
                  else committed["targets"])
        ok = (ensemble["speedup"]
              >= floors["async_ensemble_speedup_min"]
              and ring["speedup"]
              >= floors["async_delay_ring_ratio_min"])
        print(f"check vs committed floors: {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1

    if not args.quick:
        payload = dict(results)
        payload["targets"] = TARGETS
        payload["quick_targets"] = QUICK_TARGETS
        payload["targets_met"] = bool(ok)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    print(f"targets {'met' if ok else 'NOT met'} "
          f"({'quick' if args.quick else 'full'} floors)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
