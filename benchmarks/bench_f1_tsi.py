"""F1 — Theorem 1: time-scale invariance sweeps."""

from conftest import run_once
from repro.experiments import run_f1_tsi


def test_f1_time_scale_invariance(benchmark):
    result = run_once(benchmark, run_f1_tsi,
                      scales=(0.1, 1.0, 10.0), latencies=(0.0, 5.0))
    result.require()
