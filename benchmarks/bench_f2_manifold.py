"""F2 — Theorem 2(1): the aggregate steady-state manifold."""

from conftest import run_once
from repro.experiments import run_f2_manifold


def test_f2_aggregate_manifold(benchmark):
    result = run_once(benchmark, run_f2_manifold,
                      n_connections=5, n_starts=16, seed=7)
    result.require()
    # The manifold scatter is the artifact: endpoints differ, exactly
    # one is fair.
    fair_rows = [row for row in result.rows if row[4]]
    assert len(fair_rows) < len(result.rows)
