"""T1 — regenerate the paper's Table 1 (Fair Share decomposition)."""

from conftest import run_once
from repro.experiments import run_table1


def test_t1_fair_share_table(benchmark):
    result = run_once(benchmark, run_table1,
                      rates=(0.1, 0.2, 0.3, 0.4), mu=1.5)
    result.require()
    assert len(result.rows) == 4
