"""F3 — Theorem 2(2): water-filling fair-point construction."""

from conftest import run_once
from repro.experiments import run_f3_fair_construction


def test_f3_fair_construction(benchmark):
    result = run_once(benchmark, run_f3_fair_construction)
    result.require()
    assert len(result.rows) == 4  # four topologies
